//! Permutation enumeration, ranking and unbiased sampling.
//!
//! The RAGE paper contrasts a naive `O(k!)` permutation sampler (generate every
//! permutation, then sample) with an `O(k·s)` sampler that invokes the Fisher–Yates
//! shuffle `s` times. Both are implemented here, together with full enumeration
//! (Heap's algorithm) and Lehmer-code ranking used by tests and benchmarks.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::numeric::factorial;

/// Iterator over all permutations of `0..n` using Heap's algorithm.
///
/// The first yielded permutation is the identity; the full sequence contains `n!`
/// distinct permutations.
#[derive(Debug, Clone)]
pub struct PermutationIter {
    items: Vec<usize>,
    stack: Vec<usize>,
    i: usize,
    first: bool,
    done: bool,
}

impl PermutationIter {
    /// Create an iterator over the permutations of `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            items: (0..n).collect(),
            stack: vec![0; n],
            i: 0,
            first: true,
            done: false,
        }
    }

    /// Total number of permutations this iterator will yield.
    pub fn total(&self) -> u128 {
        factorial(self.items.len())
    }
}

impl Iterator for PermutationIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
            if self.items.is_empty() {
                self.done = true;
                return Some(Vec::new());
            }
            return Some(self.items.clone());
        }
        let n = self.items.len();
        while self.i < n {
            if self.stack[self.i] < self.i {
                if self.i.is_multiple_of(2) {
                    self.items.swap(0, self.i);
                } else {
                    self.items.swap(self.stack[self.i], self.i);
                }
                self.stack[self.i] += 1;
                self.i = 0;
                return Some(self.items.clone());
            } else {
                self.stack[self.i] = 0;
                self.i += 1;
            }
        }
        self.done = true;
        None
    }
}

/// In-place unbiased Fisher–Yates shuffle of a slice, using the provided RNG.
///
/// Runs in `O(n)` time and produces every permutation with equal probability, which is
/// the property the paper relies on for its `O(k·s)` permutation sampler.
pub fn fisher_yates_shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    // `SliceRandom::shuffle` is the modern Fisher–Yates ("Durstenfeld") algorithm; we
    // keep an explicit wrapper so the algorithmic provenance is visible at call sites.
    items.shuffle(rng);
}

/// Draw `s` independent uniformly-random permutations of `0..k` in `O(k·s)` time.
///
/// This is the efficient sampler of §II-C; the naive alternative (enumerate all `k!`
/// permutations, then subsample) is provided by [`naive_sample_permutations`] for the
/// benchmark comparison.
pub fn sample_permutations<R: Rng + ?Sized>(k: usize, s: usize, rng: &mut R) -> Vec<Vec<usize>> {
    (0..s)
        .map(|_| {
            let mut perm: Vec<usize> = (0..k).collect();
            fisher_yates_shuffle(&mut perm, rng);
            perm
        })
        .collect()
}

/// The naive `O(k!)` sampler: materialise every permutation, then draw `s` of them
/// uniformly (with replacement, mirroring the independent draws of the efficient
/// sampler).
pub fn naive_sample_permutations<R: Rng + ?Sized>(
    k: usize,
    s: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    let all: Vec<Vec<usize>> = PermutationIter::new(k).collect();
    (0..s)
        .map(|_| all[rng.gen_range(0..all.len())].clone())
        .collect()
}

/// Lazy enumeration of the permutations of `0..k` in order of decreasing similarity to
/// the identity (i.e. increasing inversion count / decreasing Kendall's tau), starting
/// with the identity itself.
///
/// This is the enumeration order of RAGE's permutation counterfactual search: the most
/// similar reorderings are evaluated first. Within one inversion level (equal tau) the
/// order is lexicographic, which keeps the search deterministic.
///
/// The enumeration is breadth-first over inversion levels: every permutation with `m+1`
/// inversions is reachable from some permutation with `m` inversions by swapping one
/// adjacent ascending pair, so level-by-level expansion with deduplication visits each
/// permutation exactly once and never skips a level. Unlike a full materialisation, the
/// iterator only ever holds the **frontier** (the current inversion level, plus the
/// next one while expanding) — consumers that stop early, like a budgeted
/// counterfactual search, never pay for the deeper levels, and nothing retains the
/// already-yielded prefix. Peak memory is the widest visited level instead of the whole
/// `k!` enumeration.
#[derive(Debug, Clone)]
pub struct SimilarityPermutations {
    k: usize,
    /// The current inversion level, lexicographically sorted.
    level: Vec<Vec<usize>>,
    /// Next index within `level` to yield.
    pos: usize,
}

impl SimilarityPermutations {
    /// Start the enumeration at the identity permutation of `0..k`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            level: vec![(0..k).collect()],
            pos: 0,
        }
    }

    /// Expand the current level into the next inversion level. Returns `false` when the
    /// enumeration is exhausted (the current level is the reverse-sorted permutation).
    fn advance_level(&mut self) -> bool {
        use std::collections::BTreeSet;

        let mut next: BTreeSet<Vec<usize>> = BTreeSet::new();
        for perm in &self.level {
            for i in 0..self.k.saturating_sub(1) {
                if perm[i] < perm[i + 1] {
                    let mut swapped = perm.clone();
                    swapped.swap(i, i + 1);
                    next.insert(swapped);
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        self.level = next.into_iter().collect();
        self.pos = 0;
        true
    }
}

impl Iterator for SimilarityPermutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos == self.level.len() && !self.advance_level() {
            return None;
        }
        let item = self.level[self.pos].clone();
        self.pos += 1;
        Some(item)
    }
}

/// The first `limit` permutations of [`SimilarityPermutations`], materialised.
///
/// Kept for callers that genuinely need the prefix as a slice; prefer iterating
/// [`SimilarityPermutations`] directly when consumption may stop early.
pub fn permutations_by_similarity(k: usize, limit: usize) -> Vec<Vec<usize>> {
    SimilarityPermutations::new(k).take(limit).collect()
}

/// Lehmer-code rank of a permutation of `0..n` (0 = identity, `n!`−1 = reverse-sorted).
pub fn lehmer_rank(perm: &[usize]) -> u128 {
    let n = perm.len();
    let mut rank: u128 = 0;
    for i in 0..n {
        let smaller_later = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count() as u128;
        rank = rank.saturating_add(smaller_later.saturating_mul(factorial(n - i - 1)));
    }
    rank
}

/// Inverse of [`lehmer_rank`]: the permutation of `0..n` with the given rank.
pub fn lehmer_unrank(n: usize, mut rank: u128) -> Vec<usize> {
    let mut available: Vec<usize> = (0..n).collect();
    let mut perm = Vec::with_capacity(n);
    for i in 0..n {
        let f = factorial(n - i - 1);
        let idx = (rank / f) as usize;
        rank %= f;
        perm.push(available.remove(idx.min(available.len().saturating_sub(1))));
    }
    perm
}

/// Apply a permutation to a slice: `result[i] = items[perm[i]]`.
pub fn apply_permutation<T: Clone>(items: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| items[i].clone()).collect()
}

/// Check that `perm` is a valid permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn enumerates_all_permutations() {
        for n in 0..7usize {
            let perms: Vec<_> = PermutationIter::new(n).collect();
            assert_eq!(perms.len() as u128, factorial(n), "n={n}");
            let unique: HashSet<_> = perms.iter().cloned().collect();
            assert_eq!(unique.len(), perms.len(), "all permutations distinct");
            assert!(perms.iter().all(|p| is_permutation(p, n)));
        }
    }

    #[test]
    fn first_permutation_is_identity() {
        let mut it = PermutationIter::new(4);
        assert_eq!(it.next().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(it.total(), 24);
    }

    #[test]
    fn empty_permutation() {
        let perms: Vec<_> = PermutationIter::new(0).collect();
        assert_eq!(perms, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn fisher_yates_produces_valid_permutations() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut items: Vec<usize> = (0..10).collect();
            fisher_yates_shuffle(&mut items, &mut rng);
            assert!(is_permutation(&items, 10));
        }
    }

    #[test]
    fn fisher_yates_is_unbiased_enough() {
        // Chi-square style sanity check: over many shuffles of 3 elements each of the
        // 6 permutations should appear roughly 1/6 of the time.
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 6000;
        let mut counts: std::collections::HashMap<Vec<usize>, usize> =
            std::collections::HashMap::new();
        for _ in 0..trials {
            let mut items: Vec<usize> = vec![0, 1, 2];
            fisher_yates_shuffle(&mut items, &mut rng);
            *counts.entry(items).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 6);
        for &count in counts.values() {
            let frequency = count as f64 / trials as f64;
            assert!(
                (frequency - 1.0 / 6.0).abs() < 0.03,
                "frequency {frequency}"
            );
        }
    }

    #[test]
    fn sample_permutations_counts_and_validity() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = sample_permutations(8, 25, &mut rng);
        assert_eq!(sample.len(), 25);
        assert!(sample.iter().all(|p| is_permutation(p, 8)));
    }

    #[test]
    fn naive_sampler_matches_contract() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = naive_sample_permutations(5, 10, &mut rng);
        assert_eq!(sample.len(), 10);
        assert!(sample.iter().all(|p| is_permutation(p, 5)));
    }

    #[test]
    fn sampling_zero_or_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_permutations(5, 0, &mut rng).is_empty());
        let single = sample_permutations(1, 3, &mut rng);
        assert_eq!(single, vec![vec![0], vec![0], vec![0]]);
        let empty = sample_permutations(0, 2, &mut rng);
        assert_eq!(empty, vec![Vec::<usize>::new(), Vec::<usize>::new()]);
    }

    #[test]
    fn lehmer_rank_identity_and_reverse() {
        assert_eq!(lehmer_rank(&[0, 1, 2, 3]), 0);
        assert_eq!(lehmer_rank(&[3, 2, 1, 0]), factorial(4) - 1);
    }

    #[test]
    fn lehmer_round_trip() {
        let n = 6;
        for rank in 0..factorial(n) {
            let perm = lehmer_unrank(n, rank);
            assert!(is_permutation(&perm, n));
            assert_eq!(lehmer_rank(&perm), rank);
        }
    }

    #[test]
    fn apply_permutation_reorders() {
        let items = vec!["a", "b", "c", "d"];
        assert_eq!(
            apply_permutation(&items, &[3, 1, 0, 2]),
            vec!["d", "b", "a", "c"]
        );
    }

    #[test]
    fn similarity_enumeration_starts_with_identity_and_is_monotone() {
        let perms = permutations_by_similarity(5, 40);
        assert_eq!(perms[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(perms.len(), 40);
        let inversion_counts: Vec<u64> = perms
            .iter()
            .map(|p| crate::kendall::kendall_tau_distance(p))
            .collect();
        assert!(inversion_counts.windows(2).all(|w| w[0] <= w[1]));
        // The first level after the identity contains exactly the k-1 adjacent swaps.
        assert!(inversion_counts[1..5].iter().all(|&c| c == 1));
        assert_eq!(inversion_counts[5], 2);
    }

    #[test]
    fn similarity_enumeration_covers_everything_when_unbounded() {
        for k in 0..6usize {
            let perms = permutations_by_similarity(k, 1000);
            assert_eq!(perms.len() as u128, factorial(k));
            let unique: HashSet<_> = perms.iter().cloned().collect();
            assert_eq!(unique.len(), perms.len());
        }
    }

    #[test]
    fn similarity_enumeration_respects_limit() {
        assert_eq!(permutations_by_similarity(6, 10).len(), 10);
        assert!(permutations_by_similarity(4, 0).is_empty());
        assert_eq!(permutations_by_similarity(0, 5), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn is_permutation_rejects_invalid() {
        assert!(is_permutation(&[0, 1, 2], 3));
        assert!(!is_permutation(&[0, 1, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
        assert!(!is_permutation(&[0, 1], 3));
    }
}
