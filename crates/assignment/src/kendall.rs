//! Kendall's tau rank correlation.
//!
//! RAGE's permutation counterfactual search sorts candidate permutations by decreasing
//! Kendall's tau with respect to the original context order, so that the most similar
//! reorderings are evaluated first. Two implementations are provided: a direct `O(k²)`
//! pair count (`kendall_tau_naive`) and an `O(k log k)` merge-sort inversion counter
//! (`kendall_tau`); they agree exactly on permutations and are cross-checked by tests.

/// Number of discordant pairs (inversions) between a permutation and the identity.
///
/// Counted with a merge-sort in `O(k log k)`.
pub fn inversions(perm: &[usize]) -> u64 {
    fn merge_count(data: &mut Vec<usize>, buf: &mut Vec<usize>, lo: usize, hi: usize) -> u64 {
        if hi - lo <= 1 {
            return 0;
        }
        let mid = (lo + hi) / 2;
        let mut count = merge_count(data, buf, lo, mid) + merge_count(data, buf, mid, hi);
        buf.clear();
        let (mut i, mut j) = (lo, mid);
        while i < mid && j < hi {
            if data[i] <= data[j] {
                buf.push(data[i]);
                i += 1;
            } else {
                // data[i..mid] are all greater than data[j]: each forms an inversion.
                count += (mid - i) as u64;
                buf.push(data[j]);
                j += 1;
            }
        }
        buf.extend_from_slice(&data[i..mid]);
        buf.extend_from_slice(&data[j..hi]);
        data[lo..hi].copy_from_slice(buf);
        count
    }

    let mut data = perm.to_vec();
    let mut buf = Vec::with_capacity(data.len());
    let len = data.len();
    merge_count(&mut data, &mut buf, 0, len)
}

/// Kendall's tau between a permutation of `0..k` and the identity permutation.
///
/// Returns a value in `[-1, 1]`: `1` for the identity, `-1` for the full reversal.
/// For `k < 2` the correlation is defined as `1.0` (there are no pairs to discord).
pub fn kendall_tau(perm: &[usize]) -> f64 {
    let k = perm.len();
    if k < 2 {
        return 1.0;
    }
    let total_pairs = (k * (k - 1) / 2) as f64;
    let discordant = inversions(perm) as f64;
    let concordant = total_pairs - discordant;
    (concordant - discordant) / total_pairs
}

/// Kendall's tau between two arbitrary rankings of the same items.
///
/// `a` and `b` must be permutations of `0..k`; the result is the tau of `b` relative to
/// the ordering imposed by `a`.
pub fn kendall_tau_between(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "rankings must have equal length");
    let k = a.len();
    if k < 2 {
        return 1.0;
    }
    // Position of each item in `a`.
    let mut pos_in_a = vec![0usize; k];
    for (idx, &item) in a.iter().enumerate() {
        pos_in_a[item] = idx;
    }
    // Re-express b in a's coordinate system, then correlate with the identity.
    let relabelled: Vec<usize> = b.iter().map(|&item| pos_in_a[item]).collect();
    kendall_tau(&relabelled)
}

/// Kendall tau *distance*: the number of discordant pairs between a permutation and the
/// identity (0 = identical order, `k·(k−1)/2` = reversed).
pub fn kendall_tau_distance(perm: &[usize]) -> u64 {
    inversions(perm)
}

/// Reference `O(k²)` implementation used to validate [`kendall_tau`].
pub fn kendall_tau_naive(perm: &[usize]) -> f64 {
    let k = perm.len();
    if k < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..k {
        for j in i + 1..k {
            if perm[i] < perm[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (concordant + discordant) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutations::PermutationIter;

    #[test]
    fn identity_has_tau_one() {
        assert_eq!(kendall_tau(&[0, 1, 2, 3, 4]), 1.0);
        assert_eq!(kendall_tau_distance(&[0, 1, 2, 3, 4]), 0);
    }

    #[test]
    fn reversal_has_tau_minus_one() {
        assert_eq!(kendall_tau(&[4, 3, 2, 1, 0]), -1.0);
        assert_eq!(kendall_tau_distance(&[4, 3, 2, 1, 0]), 10);
    }

    #[test]
    fn single_swap_of_adjacent_items() {
        // One discordant pair out of 10: tau = (9 - 1) / 10 = 0.8.
        assert!((kendall_tau(&[1, 0, 2, 3, 4]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(kendall_tau(&[]), 1.0);
        assert_eq!(kendall_tau(&[0]), 1.0);
    }

    #[test]
    fn fast_matches_naive_on_all_small_permutations() {
        for n in 2..7usize {
            for perm in PermutationIter::new(n) {
                let fast = kendall_tau(&perm);
                let naive = kendall_tau_naive(&perm);
                assert!((fast - naive).abs() < 1e-12, "perm {perm:?}");
            }
        }
    }

    #[test]
    fn tau_is_bounded() {
        for perm in PermutationIter::new(6) {
            let tau = kendall_tau(&perm);
            assert!((-1.0..=1.0).contains(&tau));
        }
    }

    #[test]
    fn between_with_identity_reference_matches_plain_tau() {
        let reference: Vec<usize> = (0..5).collect();
        for perm in PermutationIter::new(5) {
            assert!((kendall_tau_between(&reference, &perm) - kendall_tau(&perm)).abs() < 1e-12);
        }
    }

    #[test]
    fn between_is_symmetric() {
        let a = vec![2, 0, 3, 1, 4];
        let b = vec![4, 1, 0, 3, 2];
        assert!((kendall_tau_between(&a, &b) - kendall_tau_between(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn between_identical_rankings() {
        let a = vec![3, 1, 4, 0, 2];
        assert_eq!(kendall_tau_between(&a, &a), 1.0);
    }

    #[test]
    fn inversions_of_known_sequences() {
        assert_eq!(inversions(&[0, 1, 2]), 0);
        assert_eq!(inversions(&[2, 1, 0]), 3);
        assert_eq!(inversions(&[1, 3, 0, 2]), 3);
    }
}
