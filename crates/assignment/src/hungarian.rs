//! Kuhn–Munkres (Hungarian) optimal assignment in `O(k³)`.
//!
//! RAGE's "optimal permutations" feature assigns `k` sources to `k` context positions so
//! that the total `relevance × expected-position-attention` is maximised. That is an
//! instance of the linear assignment problem; this module solves it with the classic
//! shortest-augmenting-path formulation of the Hungarian algorithm using row/column
//! potentials.

use serde::{Deserialize, Serialize};

/// Sentinel cost for forbidden cells. Kept large but finite so the potential-based
/// algorithm stays numerically well behaved; feasibility is checked after solving.
pub const FORBIDDEN: f64 = 1.0e15;

/// A square cost (or profit) matrix stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Create an `n × n` matrix filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            n,
            data: vec![value; n * n],
        }
    }

    /// Build from a row-major slice of length `n²`.
    pub fn from_rows(n: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len(), n * n, "cost matrix must be n x n");
        Self {
            n,
            data: rows.to_vec(),
        }
    }

    /// Build from a function of `(row, column)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                data.push(f(r, c));
            }
        }
        Self { n, data }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cost of assigning row `r` to column `c`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Overwrite one cell.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        self.data[r * self.n + c] = value;
    }

    /// Negate every entry (turns a maximisation profit matrix into a minimisation one).
    pub fn negated(&self) -> Self {
        Self {
            n: self.n,
            data: self.data.iter().map(|v| -v).collect(),
        }
    }
}

/// The result of an assignment solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// `assignment[r]` is the column assigned to row `r`.
    pub assignment: Vec<usize>,
    /// Total cost (for [`solve_assignment`]) or total profit (for [`solve_max_assignment`]).
    pub total: f64,
}

impl Assignment {
    /// Whether any forbidden cell participates in the assignment.
    pub fn uses_forbidden(&self, costs: &CostMatrix) -> bool {
        self.assignment
            .iter()
            .enumerate()
            .any(|(r, &c)| costs.get(r, c) >= FORBIDDEN / 2.0)
    }
}

/// Solve the minimum-cost assignment problem for a square cost matrix.
///
/// Runs the shortest-augmenting-path Hungarian algorithm with potentials in `O(n³)`.
pub fn solve_assignment(costs: &CostMatrix) -> Assignment {
    let n = costs.n;
    if n == 0 {
        return Assignment {
            assignment: Vec::new(),
            total: 0.0,
        };
    }

    // 1-indexed potentials and matchings, following the classic formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    // p[j] = row matched to column j (0 = unmatched); p[0] is the row being inserted.
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = costs.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| costs.get(r, c))
        .sum();
    Assignment { assignment, total }
}

/// Solve the maximum-profit assignment problem (each cell is a profit, not a cost).
pub fn solve_max_assignment(profits: &CostMatrix) -> Assignment {
    let min_solution = solve_assignment(&profits.negated());
    let total = min_solution
        .assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| profits.get(r, c))
        .sum();
    Assignment {
        assignment: min_solution.assignment,
        total,
    }
}

/// Brute-force minimum-cost assignment by enumerating all `n!` permutations.
///
/// Only used by tests and the naive baseline of experiment E6.
pub fn brute_force_assignment(costs: &CostMatrix) -> Assignment {
    let n = costs.n;
    let mut best: Option<Assignment> = None;
    for perm in crate::permutations::PermutationIter::new(n) {
        let total: f64 = perm.iter().enumerate().map(|(r, &c)| costs.get(r, c)).sum();
        if best.as_ref().is_none_or(|b| total < b.total) {
            best = Some(Assignment {
                assignment: perm,
                total,
            });
        }
    }
    best.unwrap_or(Assignment {
        assignment: Vec::new(),
        total: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_valid_assignment(a: &Assignment, n: usize) -> bool {
        crate::permutations::is_permutation(&a.assignment, n)
    }

    #[test]
    fn solves_hand_computed_example() {
        // Classic 3x3 example: optimal assignment is (0->1), (1->0), (2->2) with cost 5.
        let costs = CostMatrix::from_rows(3, &[4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]);
        let solution = solve_assignment(&costs);
        assert!(is_valid_assignment(&solution, 3));
        assert_eq!(solution.total, 5.0);
    }

    #[test]
    fn identity_optimal_when_diagonal_is_cheapest() {
        let costs = CostMatrix::from_fn(4, |r, c| if r == c { 0.0 } else { 10.0 });
        let solution = solve_assignment(&costs);
        assert_eq!(solution.assignment, vec![0, 1, 2, 3]);
        assert_eq!(solution.total, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for n in 1..=6usize {
            for _ in 0..20 {
                let costs = CostMatrix::from_fn(n, |_, _| rng.gen_range(-10.0..10.0));
                let fast = solve_assignment(&costs);
                let brute = brute_force_assignment(&costs);
                assert!(is_valid_assignment(&fast, n));
                assert!(
                    (fast.total - brute.total).abs() < 1e-9,
                    "n={n} fast={} brute={}",
                    fast.total,
                    brute.total
                );
            }
        }
    }

    #[test]
    fn max_assignment_picks_largest_profits() {
        let profits = CostMatrix::from_rows(2, &[5.0, 1.0, 2.0, 4.0]);
        let solution = solve_max_assignment(&profits);
        assert_eq!(solution.assignment, vec![0, 1]);
        assert_eq!(solution.total, 9.0);
    }

    #[test]
    fn max_assignment_matches_negated_min() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let profits = CostMatrix::from_fn(5, |_, _| rng.gen_range(0.0..100.0));
            let max = solve_max_assignment(&profits);
            let brute = brute_force_assignment(&profits.negated());
            assert!((max.total + brute.total).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_matrix() {
        let solution = solve_assignment(&CostMatrix::filled(0, 0.0));
        assert!(solution.assignment.is_empty());
        assert_eq!(solution.total, 0.0);
    }

    #[test]
    fn single_cell() {
        let solution = solve_assignment(&CostMatrix::from_rows(1, &[7.5]));
        assert_eq!(solution.assignment, vec![0]);
        assert_eq!(solution.total, 7.5);
    }

    #[test]
    fn forbidden_cells_are_avoided_when_possible() {
        let mut costs = CostMatrix::filled(3, 1.0);
        costs.set(0, 0, FORBIDDEN);
        let solution = solve_assignment(&costs);
        assert!(is_valid_assignment(&solution, 3));
        assert_ne!(solution.assignment[0], 0);
        assert!(!solution.uses_forbidden(&costs));
    }

    #[test]
    fn infeasible_forced_structure_is_detectable() {
        // Row 0 can only take column 0, row 1 can only take column 0 as well:
        // any perfect assignment must use a forbidden cell.
        let mut costs = CostMatrix::filled(2, FORBIDDEN);
        costs.set(0, 0, 1.0);
        costs.set(1, 0, 1.0);
        let solution = solve_assignment(&costs);
        assert!(solution.uses_forbidden(&costs));
    }

    #[test]
    fn cost_matrix_accessors() {
        let mut m = CostMatrix::filled(2, 0.0);
        m.set(0, 1, 3.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.n(), 2);
        assert_eq!(m.negated().get(0, 1), -3.0);
    }

    #[test]
    #[should_panic(expected = "cost matrix must be n x n")]
    fn from_rows_checks_dimensions() {
        CostMatrix::from_rows(2, &[1.0, 2.0, 3.0]);
    }
}
