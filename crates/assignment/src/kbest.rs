//! The s-best assignments (ranked enumeration of assignment solutions).
//!
//! The RAGE paper requests the top-`s` "optimal permutations" by formulating the
//! placement of sources into context positions as an assignment problem and citing the
//! Chegireddy–Hamacher algorithm for the `k`-best perfect matchings, which yields an
//! overall `O(s·k³)` bound. This module implements ranked enumeration with the classic
//! solution-space partitioning scheme (Murty's algorithm): each emitted solution spawns
//! at most `k` child subproblems obtained by forcing a prefix of its pairs and forbidding
//! the next pair, every child is solved with the `O(k³)` Hungarian algorithm, and a
//! priority queue yields solutions in non-decreasing cost order. The output (the `s`
//! cheapest assignments) and the asymptotics match the paper's requirement.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::hungarian::{solve_assignment, Assignment, CostMatrix, FORBIDDEN};

/// A subproblem in the partition tree: some pairs are forced, some cells are forbidden.
#[derive(Debug, Clone)]
struct Node {
    /// Pairs `(row, col)` that every solution of this node must contain.
    forced: Vec<(usize, usize)>,
    /// Cells `(row, col)` that no solution of this node may use.
    forbidden: Vec<(usize, usize)>,
    /// The optimal assignment within this node's constraints.
    solution: Assignment,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.solution.total == other.solution.total
    }
}
impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the cheapest node pops first.
        other
            .solution
            .total
            .partial_cmp(&self.solution.total)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Build the constrained cost matrix for a node and solve it.
///
/// Returns `None` when the constraints make a finite-cost perfect assignment impossible.
fn solve_constrained(
    base: &CostMatrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
) -> Option<Assignment> {
    let n = base.n();
    let mut costs = base.clone();
    for &(r, c) in forbidden {
        costs.set(r, c, FORBIDDEN);
    }
    for &(fr, fc) in forced {
        for c in 0..n {
            if c != fc {
                costs.set(fr, c, FORBIDDEN);
            }
        }
        for r in 0..n {
            if r != fr {
                costs.set(r, fc, FORBIDDEN);
            }
        }
    }
    let solution = solve_assignment(&costs);
    if solution.uses_forbidden(&costs) {
        return None;
    }
    // Recompute the total on the *base* matrix so forced-cell costs are exact.
    let total = solution
        .assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| base.get(r, c))
        .sum();
    Some(Assignment {
        assignment: solution.assignment,
        total,
    })
}

/// Return the `s` minimum-cost assignments of `costs` in non-decreasing cost order.
///
/// Fewer than `s` assignments are returned when the problem admits fewer distinct
/// perfect assignments (e.g. `n! < s`). Total running time is `O(s · n³)` Hungarian
/// solves plus heap overhead.
pub fn k_best_assignments(costs: &CostMatrix, s: usize) -> Vec<Assignment> {
    let n = costs.n();
    if s == 0 || n == 0 {
        return Vec::new();
    }

    let mut results: Vec<Assignment> = Vec::with_capacity(s);
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();

    if let Some(best) = solve_constrained(costs, &[], &[]) {
        heap.push(Node {
            forced: Vec::new(),
            forbidden: Vec::new(),
            solution: best,
        });
    }

    while results.len() < s {
        let Some(node) = heap.pop() else { break };
        let emitted = node.solution.clone();
        results.push(emitted.clone());

        // Partition the remaining solution space of `node` around `emitted`:
        // child i forces emitted pairs 0..i and forbids pair i.
        let forced_rows: Vec<usize> = node.forced.iter().map(|&(r, _)| r).collect();
        let free_rows: Vec<usize> = (0..n).filter(|r| !forced_rows.contains(r)).collect();
        let mut forced_prefix = node.forced.clone();
        for &row in &free_rows {
            let pair = (row, emitted.assignment[row]);
            let mut forbidden = node.forbidden.clone();
            forbidden.push(pair);
            if let Some(solution) = solve_constrained(costs, &forced_prefix, &forbidden) {
                heap.push(Node {
                    forced: forced_prefix.clone(),
                    forbidden,
                    solution,
                });
            }
            forced_prefix.push(pair);
        }
    }

    results
}

/// Return the `s` maximum-profit assignments in non-increasing profit order.
pub fn k_best_max_assignments(profits: &CostMatrix, s: usize) -> Vec<Assignment> {
    let negated = profits.negated();
    k_best_assignments(&negated, s)
        .into_iter()
        .map(|a| {
            let total = a
                .assignment
                .iter()
                .enumerate()
                .map(|(r, &c)| profits.get(r, c))
                .sum();
            Assignment {
                assignment: a.assignment,
                total,
            }
        })
        .collect()
}

/// Brute-force ranked enumeration (all `n!` permutations, sorted by cost).
///
/// The naive `O(k!)` baseline of experiment E6; also used to validate the ranked
/// enumeration in tests.
pub fn brute_force_k_best(costs: &CostMatrix, s: usize) -> Vec<Assignment> {
    let n = costs.n();
    let mut all: Vec<Assignment> = crate::permutations::PermutationIter::new(n)
        .map(|perm| {
            let total = perm.iter().enumerate().map(|(r, &c)| costs.get(r, c)).sum();
            Assignment {
                assignment: perm,
                total,
            }
        })
        .collect();
    all.sort_by(|a, b| a.total.partial_cmp(&b.total).unwrap_or(Ordering::Equal));
    all.truncate(s);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn first_solution_is_the_optimum() {
        let costs = CostMatrix::from_rows(3, &[4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]);
        let best = k_best_assignments(&costs, 1);
        assert_eq!(best.len(), 1);
        assert_eq!(best[0].total, 5.0);
    }

    #[test]
    fn costs_are_non_decreasing() {
        let mut rng = StdRng::seed_from_u64(23);
        let costs = CostMatrix::from_fn(5, |_, _| rng.gen_range(0.0..10.0));
        let solutions = k_best_assignments(&costs, 20);
        assert_eq!(solutions.len(), 20);
        for pair in solutions.windows(2) {
            assert!(pair[0].total <= pair[1].total + 1e-9);
        }
    }

    #[test]
    fn solutions_are_distinct_assignments() {
        let mut rng = StdRng::seed_from_u64(9);
        let costs = CostMatrix::from_fn(4, |_, _| rng.gen_range(0.0..10.0));
        let solutions = k_best_assignments(&costs, 24);
        let unique: HashSet<Vec<usize>> = solutions.iter().map(|a| a.assignment.clone()).collect();
        assert_eq!(unique.len(), solutions.len());
        // 4! = 24 total assignments exist.
        assert_eq!(solutions.len(), 24);
    }

    #[test]
    fn requesting_more_than_n_factorial_returns_all() {
        let costs = CostMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let solutions = k_best_assignments(&costs, 10);
        assert_eq!(solutions.len(), 2);
    }

    #[test]
    fn matches_brute_force_enumeration() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in 2..=5usize {
            let costs = CostMatrix::from_fn(n, |_, _| rng.gen_range(0.0..50.0));
            let s = 8.min(crate::numeric::factorial(n) as usize);
            let ranked = k_best_assignments(&costs, s);
            let brute = brute_force_k_best(&costs, s);
            assert_eq!(ranked.len(), brute.len());
            for (a, b) in ranked.iter().zip(brute.iter()) {
                assert!(
                    (a.total - b.total).abs() < 1e-9,
                    "n={n}: ranked {} vs brute {}",
                    a.total,
                    b.total
                );
            }
        }
    }

    #[test]
    fn max_variant_is_non_increasing_and_matches_brute() {
        let mut rng = StdRng::seed_from_u64(4);
        let profits = CostMatrix::from_fn(4, |_, _| rng.gen_range(0.0..10.0));
        let ranked = k_best_max_assignments(&profits, 6);
        for pair in ranked.windows(2) {
            assert!(pair[0].total >= pair[1].total - 1e-9);
        }
        let brute = brute_force_k_best(&profits.negated(), 6);
        for (a, b) in ranked.iter().zip(brute.iter()) {
            assert!((a.total + b.total).abs() < 1e-9);
        }
    }

    #[test]
    fn s_zero_and_empty_matrix() {
        let costs = CostMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        assert!(k_best_assignments(&costs, 0).is_empty());
        assert!(k_best_assignments(&CostMatrix::filled(0, 0.0), 3).is_empty());
    }

    #[test]
    fn ties_are_handled() {
        // All costs equal: every assignment has the same total.
        let costs = CostMatrix::filled(3, 1.0);
        let solutions = k_best_assignments(&costs, 6);
        assert_eq!(solutions.len(), 6);
        assert!(solutions.iter().all(|a| (a.total - 3.0).abs() < 1e-12));
        let unique: HashSet<Vec<usize>> = solutions.iter().map(|a| a.assignment.clone()).collect();
        assert_eq!(unique.len(), 6);
    }
}
