//! Factorials, binomial coefficients and ranking helpers.
//!
//! All counting functions saturate at `u128::MAX` instead of overflowing, because RAGE
//! only uses them to decide whether a perturbation space is small enough to enumerate
//! exhaustively — beyond ~10²⁰ candidates the exact count no longer matters.

/// `n!` with saturation at `u128::MAX`.
pub fn factorial(n: usize) -> u128 {
    let mut acc: u128 = 1;
    for i in 2..=n as u128 {
        acc = acc.saturating_mul(i);
    }
    acc
}

/// Binomial coefficient `C(n, k)` with saturation at `u128::MAX`.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Multiply before dividing keeps the intermediate result integral because the
        // product of any `i + 1` consecutive integers is divisible by `(i + 1)!`.
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

/// Total number of non-empty subsets of an `n`-element set (`2^n − 1`), saturating.
pub fn num_nonempty_subsets(n: usize) -> u128 {
    if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

/// Rank of a k-combination given in strictly increasing order, in lexicographic order
/// among all `C(n, k)` combinations of `{0, .., n-1}`.
pub fn combination_rank(n: usize, combo: &[usize]) -> u128 {
    let k = combo.len();
    let mut rank: u128 = 0;
    let mut prev: isize = -1;
    for (i, &c) in combo.iter().enumerate() {
        for j in (prev + 1) as usize..c {
            rank = rank.saturating_add(binomial(n - j - 1, k - i - 1));
        }
        prev = c as isize;
    }
    rank
}

/// Inverse of [`combination_rank`]: the `rank`-th (0-based) k-combination of
/// `{0, .., n-1}` in lexicographic order.
pub fn combination_unrank(n: usize, k: usize, mut rank: u128) -> Vec<usize> {
    let mut combo = Vec::with_capacity(k);
    let mut next = 0usize;
    for remaining in (1..=k).rev() {
        let mut c = next;
        loop {
            let count = binomial(n - c - 1, remaining - 1);
            if rank < count {
                break;
            }
            rank -= count;
            c += 1;
        }
        combo.push(c);
        next = c + 1;
    }
    combo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(10), 3_628_800);
    }

    #[test]
    fn factorial_saturates() {
        assert_eq!(factorial(200), u128::MAX);
    }

    #[test]
    fn binomial_identities() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        // Symmetry.
        for n in 0..12usize {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn binomial_pascal_rule() {
        for n in 1..20usize {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn nonempty_subsets() {
        assert_eq!(num_nonempty_subsets(0), 0);
        assert_eq!(num_nonempty_subsets(3), 7);
        assert_eq!(num_nonempty_subsets(10), 1023);
        assert_eq!(num_nonempty_subsets(200), u128::MAX);
    }

    #[test]
    fn combination_rank_lexicographic() {
        // All C(5,2)=10 combinations in lexicographic order.
        let combos: Vec<Vec<usize>> = (0..10)
            .map(|r| combination_unrank(5, 2, r as u128))
            .collect();
        let expected = vec![
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![0, 4],
            vec![1, 2],
            vec![1, 3],
            vec![1, 4],
            vec![2, 3],
            vec![2, 4],
            vec![3, 4],
        ];
        assert_eq!(combos, expected);
        for (r, combo) in combos.iter().enumerate() {
            assert_eq!(combination_rank(5, combo), r as u128);
        }
    }

    #[test]
    fn rank_unrank_round_trip() {
        let n = 8;
        for k in 1..=n {
            let total = binomial(n, k);
            for rank in 0..total {
                let combo = combination_unrank(n, k, rank);
                assert_eq!(combo.len(), k);
                assert!(combo.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(combination_rank(n, &combo), rank);
            }
        }
    }
}
