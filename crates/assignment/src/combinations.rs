//! Combination (subset) iteration.
//!
//! The combination counterfactual search of the RAGE paper evaluates candidate subsets
//! "in increasing order of subset size", breaking ties between equal-size subsets by
//! their estimated relevance. [`CombinationIter`] provides the lexicographic k-subset
//! enumeration and [`SizeOrderedSubsets`] the size-major traversal that the search is
//! built on; relevance tie-breaking happens in `rage-core`, which sorts each size class
//! before evaluating it.

/// Iterator over all k-element subsets of `{0, 1, .., n-1}` in lexicographic order.
#[derive(Debug, Clone)]
pub struct CombinationIter {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
}

impl CombinationIter {
    /// Create an iterator over the `C(n, k)` subsets of size `k`.
    pub fn new(n: usize, k: usize) -> Self {
        let current = if k <= n { Some((0..k).collect()) } else { None };
        Self { n, k, current }
    }
}

impl Iterator for CombinationIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.current.clone()?;
        // Compute the successor before returning the current subset.
        let mut next = current.clone();
        let mut i = self.k;
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            if next[i] < self.n - (self.k - i) {
                next[i] += 1;
                for j in i + 1..self.k {
                    next[j] = next[j - 1] + 1;
                }
                self.current = Some(next);
                break;
            }
        }
        Some(current)
    }
}

/// Iterator over every non-empty subset of `{0, .., n-1}`, grouped by increasing size;
/// inside a size class the order is lexicographic.
///
/// This is exactly the candidate enumeration order of RAGE's combination counterfactual
/// search before the per-size relevance re-ordering is applied.
#[derive(Debug, Clone)]
pub struct SizeOrderedSubsets {
    n: usize,
    size: usize,
    max_size: usize,
    inner: CombinationIter,
}

impl SizeOrderedSubsets {
    /// All non-empty subsets of `{0, .., n-1}` from size 1 up to size `n`.
    pub fn new(n: usize) -> Self {
        Self::bounded(n, n)
    }

    /// Subsets from size 1 up to `max_size` (inclusive, clamped to `n`).
    pub fn bounded(n: usize, max_size: usize) -> Self {
        let max_size = max_size.min(n);
        Self {
            n,
            size: 1,
            max_size,
            inner: CombinationIter::new(n, 1),
        }
    }

    /// Collect the subsets of one specific size, in lexicographic order.
    pub fn of_size(n: usize, k: usize) -> Vec<Vec<usize>> {
        CombinationIter::new(n, k).collect()
    }
}

impl Iterator for SizeOrderedSubsets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.n == 0 || self.size > self.max_size {
            return None;
        }
        loop {
            if let Some(subset) = self.inner.next() {
                return Some(subset);
            }
            self.size += 1;
            if self.size > self.max_size {
                return None;
            }
            self.inner = CombinationIter::new(self.n, self.size);
        }
    }
}

/// The complement of a subset of `{0, .., n-1}` (indices not present in `subset`).
///
/// `subset` must be sorted ascending; the result is sorted ascending too.
pub fn complement(n: usize, subset: &[usize]) -> Vec<usize> {
    let mut result = Vec::with_capacity(n - subset.len());
    let mut iter = subset.iter().copied().peekable();
    for i in 0..n {
        if iter.peek() == Some(&i) {
            iter.next();
        } else {
            result.push(i);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::binomial;

    #[test]
    fn lexicographic_enumeration() {
        let combos: Vec<_> = CombinationIter::new(4, 2).collect();
        assert_eq!(
            combos,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn counts_match_binomial() {
        for n in 0..9usize {
            for k in 0..=n {
                let count = CombinationIter::new(n, k).count() as u128;
                assert_eq!(count, binomial(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn k_zero_yields_single_empty_set() {
        let combos: Vec<_> = CombinationIter::new(5, 0).collect();
        assert_eq!(combos, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn k_larger_than_n_is_empty() {
        assert_eq!(CombinationIter::new(3, 4).count(), 0);
    }

    #[test]
    fn size_ordered_traversal() {
        let subsets: Vec<_> = SizeOrderedSubsets::new(3).collect();
        assert_eq!(
            subsets,
            vec![
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![0, 1, 2],
            ]
        );
    }

    #[test]
    fn size_ordered_counts() {
        for n in 1..10usize {
            let count = SizeOrderedSubsets::new(n).count() as u128;
            assert_eq!(count, (1u128 << n) - 1);
        }
    }

    #[test]
    fn size_ordered_is_monotone_in_size() {
        let sizes: Vec<usize> = SizeOrderedSubsets::new(6).map(|s| s.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bounded_traversal_stops_at_max_size() {
        let subsets: Vec<_> = SizeOrderedSubsets::bounded(5, 2).collect();
        assert!(subsets.iter().all(|s| s.len() <= 2));
        assert_eq!(subsets.len() as u128, binomial(5, 1) + binomial(5, 2));
    }

    #[test]
    fn empty_ground_set() {
        assert_eq!(SizeOrderedSubsets::new(0).count(), 0);
    }

    #[test]
    fn of_size_helper() {
        assert_eq!(SizeOrderedSubsets::of_size(4, 3).len(), 4);
    }

    #[test]
    fn complement_partition() {
        let subset = vec![1, 3];
        let comp = complement(5, &subset);
        assert_eq!(comp, vec![0, 2, 4]);
        // Union reconstructs the ground set.
        let mut all: Vec<_> = subset.iter().chain(comp.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn complement_of_everything_and_nothing() {
        assert_eq!(complement(3, &[0, 1, 2]), Vec::<usize>::new());
        assert_eq!(complement(3, &[]), vec![0, 1, 2]);
    }
}
