//! # rage-assignment
//!
//! Combinatorics substrate for the RAGE explanation engine.
//!
//! RAGE's perturbation searches (§II-C of the paper) are built on a handful of classic
//! combinatorial primitives, all implemented here from scratch:
//!
//! * [`combinations`] — lexicographic k-subset iteration and the size-then-order
//!   power-set traversal used by the combination counterfactual search.
//! * [`permutations`] — full permutation enumeration (Heap's algorithm), Lehmer-code
//!   ranking, and the unbiased Fisher–Yates shuffle that powers the paper's `O(k·s)`
//!   permutation sampler.
//! * [`kendall`] — Kendall's tau rank-correlation coefficient, used to order candidate
//!   permutations by similarity to the original context order.
//! * [`hungarian`] — the Kuhn–Munkres `O(k³)` optimal-assignment algorithm.
//! * [`kbest`] — the s-best assignments via solution-space partitioning
//!   (Murty's scheme, the same output as the Chegireddy–Hamacher k-best perfect
//!   matchings the paper cites), giving the `O(s·k³)` optimal-permutation search.
//! * [`numeric`] — factorials, binomials and permutation/combination ranking helpers
//!   with saturating overflow behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinations;
pub mod hungarian;
pub mod kbest;
pub mod kendall;
pub mod numeric;
pub mod permutations;

pub use combinations::{CombinationIter, SizeOrderedSubsets};
pub use hungarian::{solve_assignment, Assignment};
pub use kbest::k_best_assignments;
pub use kendall::{kendall_tau, kendall_tau_distance};
pub use numeric::{binomial, factorial};
pub use permutations::{
    fisher_yates_shuffle, lehmer_rank, lehmer_unrank, permutations_by_similarity,
    sample_permutations, PermutationIter, SimilarityPermutations,
};
