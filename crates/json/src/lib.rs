//! # rage-json
//!
//! Minimal JSON reading/writing shared across the RAGE workspace.
//!
//! The workspace has no external JSON dependency, so this crate implements the
//! subset every consumer needs from scratch: a full recursive value parser
//! ([`JsonValue::parse`]), a compact renderer ([`JsonValue::render`]) and
//! string escaping ([`write_json_string`]). It backs the JSONL corpus
//! interchange format in `rage-retrieval`, the machine-readable bench/harness
//! outputs in `rage-bench`, and the versioned structured report format in
//! `rage-report`.
//!
//! It is *not* a general-purpose JSON library: numbers are kept as `f64`
//! throughout (integers render without a decimal point as long as they are
//! exactly representable), and object member lookup is linear.
//!
//! ## Non-finite numbers
//!
//! JSON has no representation for `NaN` or `±inf`. Rendering a
//! [`JsonValue::Number`] holding a non-finite value produces `null` — a
//! documented lossy mapping that keeps every rendered document parseable
//! (by this crate's own parser and any other) instead of silently emitting
//! invalid JSON.
//!
//! The parser enforces the same invariant from the other side: a literal
//! whose magnitude overflows `f64` (for example `1e999`) is a [`JsonError`]
//! ("number out of range"), never a non-finite [`JsonValue::Number`] —
//! untrusted input can therefore never smuggle `inf` past the
//! non-finite→`null` rendering contract. The two rules are deliberately
//! asymmetric: rendering degrades gracefully (in-memory values may be
//! non-finite through arithmetic), parsing rejects loudly (documents have no
//! legitimate way to express non-finite values). Underflow to `0.0` and
//! rounding to the nearest representable `f64` are accepted as usual.
//! Number syntax follows RFC 8259 exactly: `1.`, `.5`, `01`, `-01`, `1e`
//! and `1e+` are all rejected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved for rendering, lookup is linear.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 0-based byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// The string content, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number holding one
    /// exactly (no fractional part, in `usize` range).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // `usize::MAX as f64` rounds up to 2^64, which is itself out of
            // range — hence the strict bound (every representable f64 below
            // it fits).
            JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n < usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Member lookup, if this value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// An object's string-valued members as a map (non-string members skipped).
    pub fn string_map(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        if let JsonValue::Object(members) = self {
            for (key, value) in members {
                if let JsonValue::String(s) = value {
                    map.insert(key.clone(), s.clone());
                }
            }
        }
        map
    }

    /// Render the value as compact JSON.
    ///
    /// The output always parses back (`parse(render(v))` succeeds); non-finite
    /// numbers come back as [`JsonValue::Null`] (see the crate docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    // JSON cannot express NaN/±inf; `null` keeps the document valid.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::String(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` as a quoted, escaped JSON string literal.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container-nesting depth [`JsonValue::parse`] accepts.
///
/// The parser is recursive-descent, so without a bound an adversarial input
/// like 100k `[`s would overflow the stack (an abort, not an error). Real
/// documents in this workspace nest single digits deep; 128 leaves two
/// orders of magnitude of headroom while keeping the recursion trivially
/// stack-safe.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_nested(Parser::parse_object),
            Some(b'[') => self.parse_nested(Parser::parse_array),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_nested(
        &mut self,
        parse: fn(&mut Self) -> Result<JsonValue, JsonError>,
    ) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part per RFC 8259: `0` or a non-zero digit followed by
        // digits — `01` and `-01` are not JSON.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.error("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digit in number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let number: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        // A syntactically valid literal like `1e999` overflows f64 to ±inf.
        // Accepting it would hand callers a non-finite Number that the
        // renderer must then degrade to `null`; rejecting keeps the invariant
        // that a parsed Number is always finite (underflow to 0 is fine).
        if !number.is_finite() {
            return Err(JsonError {
                offset: start,
                message: "number out of range".to_string(),
            });
        }
        Ok(JsonValue::Number(number))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Decode surrogate pairs; lone surrogates are an error.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy one complete UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        // Called with `pos` on the first hex digit (after consuming 'u').
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let value = JsonValue::parse(r#"{"id": "d1", "n": 3, "ok": true, "x": null}"#).unwrap();
        assert_eq!(value.get("id").and_then(JsonValue::as_str), Some("d1"));
        assert_eq!(value.get("n"), Some(&JsonValue::Number(3.0)));
        assert_eq!(value.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("x"), Some(&JsonValue::Null));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn parses_nested_objects_and_arrays() {
        let value =
            JsonValue::parse(r#"{"fields": {"year": "2023"}, "tags": ["a", "b"]}"#).unwrap();
        let fields = value.get("fields").unwrap();
        assert_eq!(fields.get("year").and_then(JsonValue::as_str), Some("2023"));
        assert_eq!(
            value.get("tags"),
            Some(&JsonValue::Array(vec![
                JsonValue::String("a".into()),
                JsonValue::String("b".into())
            ]))
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t end";
        let mut rendered = String::new();
        write_json_string(&mut rendered, original);
        let parsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let parsed = JsonValue::parse(r#""café 🎾""#).unwrap();
        assert_eq!(parsed.as_str(), Some("café 🎾"));
    }

    #[test]
    fn non_ascii_passes_through() {
        let value = JsonValue::parse(r#"{"t": "Świątek 🎾"}"#).unwrap();
        assert_eq!(
            value.get("t").and_then(JsonValue::as_str),
            Some("Świątek 🎾")
        );
        let rendered = value.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\": }",
            "[1,",
            "\"open",
            "tru",
            "01x",
            "{} trailing",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_number_forms() {
        // Regression: these non-JSON forms (RFC 8259 §6) used to parse
        // because the grammar was never enforced — `"1.".parse::<f64>()`
        // happens to succeed in Rust.
        for bad in [
            "1.", "-1.", "01", "-01", "007", "00", "-", ".5", "-.5", "1e", "1e+", "1E-", "+1",
            "01.5", "1.e3",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "input {bad:?}");
            // Inside a container too (different code path into parse_value).
            assert!(JsonValue::parse(&format!("[{bad}]")).is_err(), "[{bad}]");
        }
        // The valid neighbours of those forms still parse.
        for (ok, expected) in [
            ("1.0", 1.0),
            ("0", 0.0),
            ("-0", -0.0),
            ("0.5", 0.5),
            ("10", 10.0),
            ("1e3", 1000.0),
            ("1E+3", 1000.0),
            ("0e0", 0.0),
        ] {
            assert_eq!(JsonValue::parse(ok).unwrap(), JsonValue::Number(expected));
        }
    }

    #[test]
    fn rejects_overflowing_number_literals() {
        // Regression: `1e999` used to materialise f64::INFINITY, violating
        // the invariant that a parsed Number is always finite.
        for bad in ["1e999", "-1e999", "1e309", "123456789e9999", "2e308"] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(err.message.contains("out of range"), "{bad:?}: {err}");
        }
        // The largest finite f64 and underflow-to-zero are both fine.
        assert_eq!(
            JsonValue::parse("1.7976931348623157e308").unwrap(),
            JsonValue::Number(f64::MAX)
        );
        assert_eq!(JsonValue::parse("1e-999").unwrap(), JsonValue::Number(0.0));
        // Subnormals round to the nearest representable value, not to an error.
        assert_eq!(
            JsonValue::parse("4e-324").unwrap().as_f64(),
            Some(5e-324f64)
        );
    }

    #[test]
    fn render_parse_asymmetry_for_non_finite_numbers() {
        // The renderer degrades non-finite values to `null`; the parser
        // rejects literals that would overflow. Together: no JSON text can
        // ever round-trip into a non-finite Number.
        let rendered = JsonValue::Number(f64::INFINITY).render();
        assert_eq!(rendered, "null");
        assert_eq!(JsonValue::parse(&rendered).unwrap(), JsonValue::Null);
        // ... while the textual spelling of infinity's magnitude is an error,
        // not a Number(inf).
        assert!(JsonValue::parse("1e999").is_err());
        // No accepted numeric input produces a non-finite value.
        for input in ["1.7976931348623157e308", "-1.7976931348623157e308"] {
            let parsed = JsonValue::parse(input).unwrap();
            assert!(parsed.as_f64().unwrap().is_finite());
        }
    }

    #[test]
    fn numbers_parse_and_render() {
        assert_eq!(
            JsonValue::parse("-12.5e1").unwrap(),
            JsonValue::Number(-125.0)
        );
        assert_eq!(JsonValue::Number(42.0).render(), "42");
        assert_eq!(JsonValue::Number(0.5).render(), "0.5");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        // Regression: `format!("{n}")` used to emit the literal tokens `NaN`
        // and `inf`, which this module's own parser rejects.
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Number(f64::NEG_INFINITY).render(), "null");

        // Any document containing non-finite numbers still round-trips as
        // valid JSON, with the affected members mapped to null.
        let doc = JsonValue::Object(vec![
            ("ok".into(), JsonValue::Number(1.5)),
            ("bad".into(), JsonValue::Number(f64::NAN)),
            (
                "nested".into(),
                JsonValue::Array(vec![JsonValue::Number(f64::INFINITY)]),
            ),
        ]);
        let reparsed = JsonValue::parse(&doc.render()).unwrap();
        assert_eq!(reparsed.get("ok"), Some(&JsonValue::Number(1.5)));
        assert_eq!(reparsed.get("bad"), Some(&JsonValue::Null));
        assert_eq!(
            reparsed.get("nested"),
            Some(&JsonValue::Array(vec![JsonValue::Null]))
        );
    }

    #[test]
    fn float_precision_round_trips() {
        // Rust's shortest-representation float formatting guarantees that
        // every finite f64 survives render → parse bit-exactly.
        for n in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-17, 0.47] {
            let rendered = JsonValue::Number(n).render();
            assert_eq!(JsonValue::parse(&rendered).unwrap(), JsonValue::Number(n));
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the bound: parses fine.
        let depth_ok = MAX_DEPTH - 1;
        let ok = "[".repeat(depth_ok) + "1" + &"]".repeat(depth_ok);
        assert!(JsonValue::parse(&ok).is_ok());
        // An adversarial 100k-bracket document returns a JsonError (not a
        // stack-overflow abort).
        let bomb = "[".repeat(100_000);
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
        // Mixed object/array nesting hits the same bound.
        let mixed = "{\"a\":[".repeat(MAX_DEPTH) + "1";
        assert!(JsonValue::parse(&mixed)
            .unwrap_err()
            .message
            .contains("nesting too deep"));
    }

    #[test]
    fn as_usize_rejects_out_of_range_values() {
        // 2^64 == usize::MAX as f64 after rounding; it must not saturate.
        assert_eq!(JsonValue::Number(18446744073709551616.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1e300).as_usize(), None);
        // The largest exactly-representable in-range integer still works.
        let max_ok = (u64::MAX - 2047) as f64; // 2^64 - 2048
        assert_eq!(JsonValue::Number(max_ok).as_usize(), Some(max_ok as usize));
    }

    #[test]
    fn accessors_discriminate_types() {
        assert_eq!(JsonValue::Number(2.0).as_f64(), Some(2.0));
        assert_eq!(JsonValue::Number(2.0).as_usize(), Some(2));
        assert_eq!(JsonValue::Number(2.5).as_usize(), None);
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Bool(true).as_bool(), Some(true));
        assert_eq!(JsonValue::Null.as_f64(), None);
        assert!(JsonValue::Null.is_null());
        assert!(!JsonValue::Bool(false).is_null());
        let arr = JsonValue::Array(vec![JsonValue::Null]);
        assert_eq!(arr.as_array().map(<[JsonValue]>::len), Some(1));
        assert_eq!(arr.as_str(), None);
    }

    #[test]
    fn string_map_extracts_string_members() {
        let value = JsonValue::parse(r#"{"a": "x", "b": 3, "c": "y"}"#).unwrap();
        let map = value.string_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map["a"], "x");
        assert_eq!(map["c"], "y");
    }

    #[test]
    fn render_escapes_object_keys() {
        let value = JsonValue::Object(vec![(
            "we\"ird".to_string(),
            JsonValue::String("v".to_string()),
        )]);
        let rendered = value.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), value);
    }
}
