//! E7: counterfactual search cost under the pruned enumeration, with the
//! batched parallel evaluator against the sequential baseline.
//!
//! Each iteration runs on a fresh evaluator so the LLM-call cache does not
//! flatter the numbers.

use rage_bench::workloads::{evaluator_for, parallel_evaluator_for, synthetic};
use rage_bench::{black_box, scaled, section, Runner};
use rage_core::counterfactual::{find_combination_counterfactual, CounterfactualConfig};
use rage_core::scoring::ScoringMethod;

fn main() {
    let mut runner = Runner::from_args();

    section("counterfactual: top-down combination search");
    for k in [4usize, 6, 8] {
        let scenario = synthetic(k);
        let config = CounterfactualConfig::top_down()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(512);
        runner.bench(&format!("top-down/k={k}"), scaled(20), || {
            let evaluator = evaluator_for(&scenario);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
    }

    section("counterfactual: bottom-up combination search");
    for k in [4usize, 6, 8] {
        let scenario = synthetic(k);
        let config = CounterfactualConfig::bottom_up()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(512);
        runner.bench(&format!("bottom-up/k={k}"), scaled(20), || {
            let evaluator = evaluator_for(&scenario);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
    }

    section("counterfactual: top-down, sequential vs parallel worker pool");
    for k in [6usize, 8] {
        let scenario = synthetic(k);
        let config = CounterfactualConfig::top_down()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(512);
        let seq = runner.bench(&format!("top-down/k={k}/seq"), scaled(10), || {
            let evaluator = evaluator_for(&scenario);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
        let par = runner.bench(&format!("top-down/k={k}/par4"), scaled(10), || {
            let evaluator = parallel_evaluator_for(&scenario, 4);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
        runner.ratio(&format!("top-down/k={k}/speedup@4"), &seq, &par);
    }

    runner.finish();
}
