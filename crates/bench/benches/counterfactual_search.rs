fn main(){}
