//! E7: counterfactual search cost under the pruned enumeration.
//!
//! Each iteration runs on a fresh evaluator so the LLM-call cache does not
//! flatter the numbers.

use rage_bench::workloads::{evaluator_for, synthetic};
use rage_bench::{bench, black_box, scaled, section};
use rage_core::counterfactual::{find_combination_counterfactual, CounterfactualConfig};
use rage_core::scoring::ScoringMethod;

fn main() {
    section("counterfactual: top-down combination search");
    for k in [4usize, 6, 8] {
        let scenario = synthetic(k);
        let config = CounterfactualConfig::top_down()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(512);
        bench(&format!("top-down/k={k}"), scaled(20), || {
            let evaluator = evaluator_for(&scenario);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
    }

    section("counterfactual: bottom-up combination search");
    for k in [4usize, 6, 8] {
        let scenario = synthetic(k);
        let config = CounterfactualConfig::bottom_up()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(512);
        bench(&format!("bottom-up/k={k}"), scaled(20), || {
            let evaluator = evaluator_for(&scenario);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
    }
}
