//! Full explanation reports over the three paper use cases (§III).

use rage_bench::workloads::evaluator_for;
use rage_bench::{bench, black_box, scaled, section};
use rage_core::explanation::ReportConfig;
use rage_core::RageReport;
use rage_datasets::{big_three, timeline, us_open};

fn main() {
    section("use cases: full RageReport");
    for scenario in [
        big_three::scenario(),
        us_open::scenario(),
        timeline::scenario(),
    ] {
        let config = ReportConfig::default();
        bench(&format!("report/{}", scenario.name), scaled(10), || {
            let evaluator = evaluator_for(&scenario);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
    }
}
