//! Full explanation reports over the three paper use cases (§III), sequential
//! and through the 4-thread parallel evaluator.

use rage_bench::workloads::{evaluator_for, parallel_evaluator_for};
use rage_bench::{black_box, scaled, section, Runner};
use rage_core::explanation::ReportConfig;
use rage_core::RageReport;
use rage_datasets::{big_three, timeline, us_open};

fn main() {
    let mut runner = Runner::from_args();

    section("use cases: full RageReport");
    for scenario in [
        big_three::scenario(),
        us_open::scenario(),
        timeline::scenario(),
    ] {
        let config = ReportConfig::default();
        let seq = runner.bench(&format!("report/{}", scenario.name), scaled(10), || {
            let evaluator = evaluator_for(&scenario);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
        let par = runner.bench(
            &format!("report/{}/par4", scenario.name),
            scaled(10),
            || {
                let evaluator = parallel_evaluator_for(&scenario, 4);
                black_box(RageReport::generate(&evaluator, &config).unwrap());
            },
        );
        runner.ratio(&format!("report/{}/speedup@4", scenario.name), &seq, &par);
    }

    runner.finish();
}
