//! Latency of one simulated-LLM inference at growing context sizes.

use rage_bench::workloads::synthetic;
use rage_bench::{bench, black_box, scaled, section};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_llm::{LanguageModel, LlmInput, SourceText};

fn main() {
    section("llm: single inference");
    let llm = SimLlm::new(SimLlmConfig::default());
    for k in [2usize, 5, 10, 20] {
        let scenario = synthetic(k);
        let sources: Vec<SourceText> = scenario
            .corpus
            .iter()
            .map(|d| SourceText::new(d.id.clone(), d.full_text()))
            .collect();
        let input = LlmInput::new(scenario.question.clone(), sources);
        bench(&format!("generate/k={k}"), scaled(50), || {
            black_box(llm.generate(&input));
        });
    }
}
