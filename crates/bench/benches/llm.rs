//! Latency of one simulated-LLM inference at growing context sizes, with and
//! without the prefix/attention KV cache.

use std::sync::Arc;

use rage_bench::workloads::synthetic;
use rage_bench::{black_box, scaled, section, Runner};
use rage_llm::cache::PrefixCache;
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_llm::{LanguageModel, LlmInput, SourceText};

fn input_for(k: usize) -> LlmInput {
    let scenario = synthetic(k);
    let sources: Vec<SourceText> = scenario
        .corpus
        .iter()
        .map(|d| SourceText::new(d.id.clone(), d.full_text()))
        .collect();
    LlmInput::new(scenario.question.clone(), sources)
}

fn main() {
    let mut runner = Runner::from_args();

    section("llm: single inference (uncached)");
    let llm = SimLlm::new(SimLlmConfig::default());
    let mut uncached_results = Vec::new();
    for k in [2usize, 5, 10, 20] {
        let input = input_for(k);
        let result = runner.bench(&format!("generate/k={k}"), scaled(50), || {
            black_box(llm.generate(&input));
        });
        uncached_results.push((k, result));
    }

    section("llm: single inference (warm prefix cache)");
    let cached_llm =
        SimLlm::new(SimLlmConfig::default()).with_prefix_cache(Arc::new(PrefixCache::default()));
    for (k, uncached) in &uncached_results {
        let input = input_for(*k);
        cached_llm.generate(&input); // warm the (token, position) state
        let cached = runner.bench(&format!("generate-cached/k={k}"), scaled(50), || {
            black_box(cached_llm.generate(&input));
        });
        runner.ratio(&format!("generate/k={k}/cache-speedup"), uncached, &cached);
    }

    section("llm: batch_generate (8 permuted prompts, shared prefix)");
    for k in [5usize, 10] {
        let base = input_for(k);
        // Rotate the sources to fabricate 8 distinct perturbed prompts.
        let inputs: Vec<LlmInput> = (0..8)
            .map(|shift| {
                let mut sources = base.sources.clone();
                let len = sources.len().max(1);
                sources.rotate_left(shift % len);
                LlmInput::new(base.question.clone(), sources)
            })
            .collect();
        let batch_llm = SimLlm::new(SimLlmConfig::default())
            .with_prefix_cache(Arc::new(PrefixCache::default()));
        runner.bench(&format!("batch_generate/k={k}/b=8"), scaled(10), || {
            black_box(batch_llm.batch_generate(&inputs));
        });
    }

    runner.finish();
}
