//! The CI regression-tracking bench: the two hot paths only, fast enough to
//! run on every pull request.
//!
//! Intended invocation (see `.github/workflows/ci.yml`):
//!
//! ```text
//! RAGE_BENCH_FAST=1 cargo bench --bench hot -- --json BENCH_pr.json
//! cargo run -p rage-bench --bin bench_diff -- \
//!     crates/bench/baselines/BENCH_baseline.json BENCH_pr.json \
//!     --threshold 0.20 --require "ask/k=10" --require "top-down/k=8"
//! ```
//!
//! The sequential-vs-parallel report cases also run here so the 4-thread
//! speedup ratio lands in `BENCH_pr.json` as a tracked artifact.

use rage_bench::workloads::{
    bench_report_config, evaluator_for, evaluator_for_with_backend,
    parallel_evaluator_and_cache_for, parallel_evaluator_for, pipeline_for, synthetic,
};
use rage_bench::{black_box, scaled, section, Runner};
use rage_core::counterfactual::{find_combination_counterfactual, CounterfactualConfig};
use rage_core::scoring::ScoringMethod;
use rage_core::{Deadline, RageReport};
use rage_llm::kernels::KernelBackend;

fn main() {
    let mut runner = Runner::from_args();

    section("hot: pipeline ask");
    {
        let scenario = synthetic(10);
        let pipeline = pipeline_for(&scenario);
        // Gated in CI: keep the fast-mode sample count high enough (10+) that
        // one scheduler hiccup cannot shift the mean past the 20% fence.
        runner.bench("ask/k=10", scaled(100), || {
            black_box(
                pipeline
                    .ask(&scenario.question, scenario.retrieval_k)
                    .unwrap(),
            );
        });
    }

    section("hot: top-down counterfactual search");
    {
        let scenario = synthetic(8);
        let config = CounterfactualConfig::top_down()
            .with_scoring(ScoringMethod::RetrievalScore)
            .with_budget(512);
        // Gated in CI: see the sample-count note above.
        runner.bench("top-down/k=8", scaled(50), || {
            let evaluator = evaluator_for(&scenario);
            black_box(find_combination_counterfactual(&evaluator, &config).unwrap());
        });
    }

    section("hot: report, sequential vs 4-thread pool");
    {
        let scenario = synthetic(8);
        let config = bench_report_config();
        let seq = runner.bench("report/k=8/seq", scaled(10), || {
            let evaluator = evaluator_for(&scenario);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
        let par = runner.bench("report/k=8/par4", scaled(10), || {
            let evaluator = parallel_evaluator_for(&scenario, 4);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
        runner.ratio("report/k=8/speedup@4", &seq, &par);

        // SIMD kernel backend over the same workload. Both legs pin their
        // backend explicitly (the enum, not the cargo feature), so the ratio
        // is meaningful no matter what the build's default backend is; the
        // gated "report/k=8/seq" above keeps using the default and stays
        // comparable to the baseline.
        let scalar = runner.bench("report/k=8/seq/scalar", scaled(10), || {
            let evaluator = evaluator_for_with_backend(&scenario, KernelBackend::Scalar);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
        let simd = runner.bench("report/k=8/seq/simd", scaled(10), || {
            let evaluator = evaluator_for_with_backend(&scenario, KernelBackend::Simd);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
        runner.ratio("report/k=8/simd_speedup", &scalar, &simd);

        // One instrumented run so the SimLlm prefix cache's effectiveness on
        // this workload lands in the JSON next to the timings — a cache
        // regression (hit rate collapse) shows up in BENCH_pr.json even when
        // wall-clock noise hides it.
        let (evaluator, cache) = parallel_evaluator_and_cache_for(&scenario, 4);
        black_box(RageReport::generate(&evaluator, &config).unwrap());
        runner.cache_counters("report/k=8/prefix_cache", cache.stats());
    }

    section("anytime: deadline-bounded report");
    {
        // How much explanation fits under each served SLO: the wall-clock per
        // deadline tier, plus two tracked counters per tier — did the bounded
        // run still find a flip, and did every section finish exactly? Both
        // come from one instrumented run (counters inside `bench` would count
        // warm-up iterations too).
        let scenario = synthetic(8);
        let config = bench_report_config();
        for deadline_ms in [5u64, 20, 50, 200] {
            let name = format!("anytime/report/k=8/{deadline_ms}ms");
            runner.bench(&name, scaled(10), || {
                let evaluator = evaluator_for(&scenario);
                black_box(
                    RageReport::generate_with_deadline(
                        &evaluator,
                        &config,
                        Some(Deadline::after_ms(deadline_ms)),
                    )
                    .unwrap(),
                );
            });
            let evaluator = evaluator_for(&scenario);
            let report = RageReport::generate_with_deadline(
                &evaluator,
                &config,
                Some(Deadline::after_ms(deadline_ms)),
            )
            .unwrap();
            let flip_found = report.top_down.counterfactual.is_some()
                || report.bottom_up.counterfactual.is_some();
            runner.counter(&format!("{name}/flip_found"), flip_found as u64 as f64);
            runner.counter(
                &format!("{name}/sections_exact"),
                report.all_sections_exact() as u64 as f64,
            );
        }
    }

    runner.finish();
}
