//! E9: index construction and query latency at growing corpus sizes, single vs
//! sharded.
//!
//! The sharded cases partition the same corpus into N per-shard indexes (parallel
//! build) and merge per-shard top-k selections at query time; results are identical to
//! the single index by contract, so the interesting output is purely the timing —
//! `build/.../shards=N` vs `build/...` and `query/.../shards=N` vs `query/...`, plus
//! the recorded `single/sharded` ratios. On a single-CPU runner the sharded build
//! ratio hovers near (or below) 1×; on a multicore runner the per-shard worker
//! threads should push it well above.

use rage_bench::{black_box, scaled, section, Runner};
use rage_datasets::entity_registry::{self, EntityRegistryConfig};
use rage_datasets::large_corpus::{self, LargeCorpusConfig};
use rage_datasets::synthetic::{filler_corpus, filler_queries, FillerConfig};
use rage_retrieval::{Document, IndexBuilder, Searcher, ShardedIndexBuilder, ShardedSearcher};

const SHARD_COUNTS: &[usize] = &[2, 4, 8];

fn main() {
    let mut runner = Runner::from_args();

    section("retrieval: index build");
    for num_docs in [100usize, 1_000, 5_000] {
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        runner.bench(&format!("build/docs={num_docs}"), scaled(10), || {
            black_box(IndexBuilder::default().build(&corpus));
        });
    }

    section("retrieval: sharded index build");
    {
        let num_docs = 5_000usize;
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        let single = runner.bench(&format!("build/docs={num_docs}/single"), scaled(10), || {
            black_box(IndexBuilder::default().build(&corpus));
        });
        for &shards in SHARD_COUNTS {
            let builder = ShardedIndexBuilder::new(shards);
            let result = runner.bench(
                &format!("build/docs={num_docs}/shards={shards}"),
                scaled(10),
                || {
                    black_box(builder.build(&corpus));
                },
            );
            runner.ratio(
                &format!("build-speedup/docs={num_docs}/shards={shards}"),
                &single,
                &result,
            );
        }
    }

    section("retrieval: top-5 query");
    for num_docs in [100usize, 1_000, 5_000] {
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        let queries = filler_queries(config, 32);
        let mut next = 0usize;
        runner.bench(&format!("query/docs={num_docs}"), scaled(200), || {
            let query = &queries[next % queries.len()];
            next += 1;
            black_box(searcher.search(query, 5));
        });
    }

    section("retrieval: sharded top-5 query");
    {
        let num_docs = 5_000usize;
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        let queries = filler_queries(config, 32);
        let single_searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        let mut next = 0usize;
        let single = runner.bench(
            &format!("query/docs={num_docs}/single"),
            scaled(200),
            || {
                let query = &queries[next % queries.len()];
                next += 1;
                black_box(single_searcher.search(query, 5));
            },
        );
        for &shards in SHARD_COUNTS {
            let sharded = ShardedSearcher::from_corpus(&corpus, shards);
            let mut next = 0usize;
            let result = runner.bench(
                &format!("query/docs={num_docs}/shards={shards}"),
                scaled(200),
                || {
                    let query = &queries[next % queries.len()];
                    next += 1;
                    black_box(sharded.search(query, 5));
                },
            );
            runner.ratio(
                &format!("query-speedup/docs={num_docs}/shards={shards}"),
                &single,
                &result,
            );
        }
    }

    // Incremental mutation vs rebuild: the cost of applying one document-level
    // mutation through the delta-segment path against rebuilding the whole
    // sharded index from the mutated corpus. Rankings are bit-identical by
    // contract (the incremental property suite proves it); the timings here
    // record what that contract buys per mutation.
    section("retrieval: incremental mutation vs rebuild");
    {
        let num_docs = 5_000usize;
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        let builder = ShardedIndexBuilder::new(8);
        let breaking = Document::new(
            "bench-breaking-doc",
            "Breaking result",
            "a breaking result lands in the live corpus and must be searchable at once",
        );

        let mut mutated = corpus.clone();
        mutated.push(breaking.clone());
        let rebuild = runner.bench(
            &format!("mutate/docs={num_docs}/rebuild"),
            scaled(10),
            || {
                black_box(builder.build(&mutated));
            },
        );

        let mut index = builder.build(&corpus);
        let incremental = runner.bench(
            &format!("mutate/docs={num_docs}/incremental-add-remove"),
            scaled(10),
            || {
                index.add(breaking.clone()).unwrap();
                index.remove("bench-breaking-doc").unwrap();
                black_box(index.num_docs());
            },
        );
        runner.ratio(
            &format!("mutate-speedup/docs={num_docs}"),
            &rebuild,
            &incremental,
        );

        let mut live = builder.build(&mutated);
        runner.bench(
            &format!("mutate/docs={num_docs}/incremental-update"),
            scaled(10),
            || {
                live.update(breaking.clone()).unwrap();
                black_box(live.num_docs());
            },
        );
    }

    // The registry's large-corpus scenario: the realistic needle-in-a-haystack
    // workload (signal documents spread through 2k+ filler documents) instead of
    // uniform filler. Index build plus the scenario's own retrieval query.
    section("retrieval: large-corpus scenario");
    {
        let scenario = large_corpus::scenario(LargeCorpusConfig::default());
        let n = scenario.corpus_size();
        runner.bench(
            &format!("large-corpus/build/docs={n}/single"),
            scaled(10),
            || {
                black_box(IndexBuilder::default().build(&scenario.corpus));
            },
        );
        let builder = ShardedIndexBuilder::new(8);
        runner.bench(
            &format!("large-corpus/build/docs={n}/shards=8"),
            scaled(10),
            || {
                black_box(builder.build(&scenario.corpus));
            },
        );

        let single = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let sharded = ShardedSearcher::from_corpus(&scenario.corpus, 8);
        assert_eq!(
            single.search(&scenario.question, scenario.retrieval_k),
            sharded.search(&scenario.question, scenario.retrieval_k),
            "sharded results must be identical to single-index results"
        );
        runner.bench(
            &format!("large-corpus/query/docs={n}/single"),
            scaled(500),
            || {
                black_box(single.search(&scenario.question, scenario.retrieval_k));
            },
        );
        runner.bench(
            &format!("large-corpus/query/docs={n}/shards=8"),
            scaled(500),
            || {
                black_box(sharded.search(&scenario.question, scenario.retrieval_k));
            },
        );
    }

    // Exact dynamic pruning at registry scale: a 100k-record entity registry
    // queried with affiliation lookups, production (pruned MaxScore-style) path
    // vs the exhaustive dense-scoring oracle. Results are bit-identical by
    // contract (tests/pruning.rs proves it; a spot-check below re-asserts it on
    // this corpus), so the interesting output is the pruned/exhaustive speedup
    // ratio — the whole point of the term-dictionary + upper-bound layout.
    section("retrieval: exact pruning at 100k (entity registry)");
    {
        let config = EntityRegistryConfig {
            num_orgs: 100_000,
            ..EntityRegistryConfig::default()
        };
        let corpus = entity_registry::registry_corpus(config);
        let n = corpus.len();
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        let lookups = entity_registry::resolution_queries(config, 64);

        for lookup in lookups.iter().take(6) {
            assert_eq!(
                searcher.search(&lookup.query, 10),
                searcher.try_search_exhaustive(&lookup.query, 10).unwrap(),
                "pruned results must be identical to exhaustive results"
            );
        }

        // One iteration = 6 consecutive lookups. The rotation repeats the three
        // query forms with period 3, so any 6 consecutive lookups hold exactly two
        // of each form — every iteration times the same workload mix, which keeps
        // the per-iteration distribution unimodal (and the regression gate on the
        // pruned bucket meaningful) on a noisy 1-CPU runner.
        let mut next = 0usize;
        let exhaustive = runner.bench("query/docs=100k/exhaustive", scaled(200), || {
            for _ in 0..6 {
                let query = &lookups[next % lookups.len()].query;
                next += 1;
                black_box(searcher.try_search_exhaustive(query, 10).unwrap());
            }
        });
        let mut next = 0usize;
        let pruned = runner.bench("query/docs=100k/pruned", scaled(200), || {
            for _ in 0..6 {
                let query = &lookups[next % lookups.len()].query;
                next += 1;
                black_box(searcher.search(query, 10));
            }
        });
        runner.ratio(
            "query-speedup/docs=100k/pruned-vs-exhaustive",
            &exhaustive,
            &pruned,
        );

        // The batch entity-resolution bucket: one iteration resolves a rotating
        // window of 32 affiliation lookups top-10, the shape the server's batch
        // endpoint and the loadtest replay.
        let mut start = 0usize;
        runner.bench("entity-resolution/docs=100k/batch=32", scaled(10), || {
            for i in 0..32 {
                let lookup = &lookups[(start + i) % lookups.len()];
                black_box(searcher.search(&lookup.query, 10));
            }
            start += 32;
        });

        let sharded = ShardedSearcher::from_corpus(&corpus, 4);
        let mut next = 0usize;
        runner.bench(
            &format!("query/docs={n}/shards=4/pruned"),
            scaled(200),
            || {
                for _ in 0..6 {
                    let query = &lookups[next % lookups.len()].query;
                    next += 1;
                    black_box(sharded.search(query, 10));
                }
            },
        );
    }

    runner.finish();
}
