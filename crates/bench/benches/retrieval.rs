//! E9: index construction and query latency at growing corpus sizes.

use rage_bench::{black_box, scaled, section, Runner};
use rage_datasets::synthetic::{filler_corpus, filler_queries, FillerConfig};
use rage_retrieval::{IndexBuilder, Searcher};

fn main() {
    let mut runner = Runner::from_args();

    section("retrieval: index build");
    for num_docs in [100usize, 1_000, 5_000] {
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        runner.bench(&format!("build/docs={num_docs}"), scaled(10), || {
            black_box(IndexBuilder::default().build(&corpus));
        });
    }

    section("retrieval: top-5 query");
    for num_docs in [100usize, 1_000, 5_000] {
        let config = FillerConfig {
            num_docs,
            ..FillerConfig::default()
        };
        let corpus = filler_corpus(config);
        let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
        let queries = filler_queries(config, 32);
        let mut next = 0usize;
        runner.bench(&format!("query/docs={num_docs}"), scaled(200), || {
            let query = &queries[next % queries.len()];
            next += 1;
            black_box(searcher.search(query, 5));
        });
    }

    runner.finish();
}
