//! E6: ranked `O(s·k³)` placement enumeration vs the naive `O(k!)` baseline.

use rage_bench::workloads::{evaluator_for, synthetic};
use rage_bench::{black_box, scaled, section, Runner};
use rage_core::optimal::{naive_orders, ranked_orders, OptimalConfig, OrderObjective};
use rage_core::scoring::ScoringMethod;

fn main() {
    let mut runner = Runner::from_args();
    let config = OptimalConfig::default()
        .with_scoring(ScoringMethod::RetrievalScore)
        .with_num_orders(5);

    section("optimal permutations: ranked k-best assignment");
    for k in [4usize, 6, 8] {
        let scenario = synthetic(k);
        let evaluator = evaluator_for(&scenario);
        runner.bench(&format!("ranked/k={k}"), scaled(50), || {
            black_box(ranked_orders(&evaluator, &config, OrderObjective::Best).unwrap());
        });
    }

    section("optimal permutations: naive k! enumeration");
    for k in [4usize, 6, 8] {
        let scenario = synthetic(k);
        let evaluator = evaluator_for(&scenario);
        runner.bench(&format!("naive/k={k}"), scaled(10), || {
            black_box(naive_orders(&evaluator, &config, OrderObjective::Best).unwrap());
        });
    }

    runner.finish();
}
