//! §II-C: the `O(k·s)` Fisher–Yates permutation sampler vs the naive `O(k!)`
//! enumerate-then-sample baseline.

use rage_assignment::permutations::{naive_sample_permutations, sample_permutations};
use rage_bench::{black_box, scaled, section, Runner};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut runner = Runner::from_args();
    let s = 64usize;

    section("permutation sampling: Fisher-Yates O(k*s)");
    for k in [5usize, 8, 10] {
        let mut rng = StdRng::seed_from_u64(17);
        runner.bench(&format!("fisher-yates/k={k}/s={s}"), scaled(200), || {
            black_box(sample_permutations(k, s, &mut rng));
        });
    }

    section("permutation sampling: naive O(k!)");
    for k in [5usize, 8] {
        let mut rng = StdRng::seed_from_u64(17);
        runner.bench(&format!("naive/k={k}/s={s}"), scaled(10), || {
            black_box(naive_sample_permutations(k, s, &mut rng));
        });
    }

    runner.finish();
}
