//! Fused-kernel forward pass vs the straight-line reference, across context
//! sizes — the microbench behind the `kernels` module's existence.
//!
//! The two paths are bit-identical by contract (`tests/kernel_equivalence.rs`
//! in `rage-llm` enforces it); this target tracks the *speed* side: how much
//! the flat buffers, blocking and mirrored score matrix buy at each sequence
//! length, what the SIMD backend buys on top of the scalar fused path
//! (`forward/simd_speedup/k=*` — ULP-divergent by contract, pinned by
//! `tests/simd_equivalence.rs`), and what the prefix cache adds on top.
//!
//! ```text
//! cargo bench --bench kernels [-- --json KERNELS.json]
//! ```

use rage_bench::{black_box, scaled, section, Runner};
use rage_llm::cache::PrefixCache;
use rage_llm::kernels::KernelBackend;
use rage_llm::tokenizer::SimTokenizer;
use rage_llm::transformer::{Transformer, TransformerConfig};
use rage_llm::{LlmInput, SourceText};

/// A deterministic prompt with `k` sources (tennis-flavoured filler so token
/// overlap with the question is realistic).
fn prompt_for(tokenizer: &SimTokenizer, k: usize) -> rage_llm::tokenizer::TokenizedPrompt {
    let sources = (0..k)
        .map(|i| {
            SourceText::new(
                format!("s{i}"),
                format!(
                    "player number {i} won the open championship title in year {}",
                    2000 + i
                ),
            )
        })
        .collect();
    tokenizer.tokenize_prompt(&LlmInput::new(
        "who won the most open championship titles",
        sources,
    ))
}

fn main() {
    let mut runner = Runner::from_args();
    let tokenizer = SimTokenizer::new();
    // Backends pinned via the enum (not the cargo feature) so scalar and SIMD
    // legs land side by side in every build.
    let transformer =
        Transformer::new(TransformerConfig::default()).with_backend(KernelBackend::Scalar);
    let vectored = Transformer::new(TransformerConfig::default()).with_backend(KernelBackend::Simd);

    for k in [2usize, 5, 10, 20] {
        let prompt = prompt_for(&tokenizer, k);
        let tokens = prompt.len();
        section(&format!("kernels: forward, k={k} ({tokens} tokens)"));

        let fused = runner.bench(&format!("forward/fused/k={k}"), scaled(300), || {
            black_box(transformer.forward(&prompt));
        });
        let reference = runner.bench(&format!("forward/reference/k={k}"), scaled(100), || {
            black_box(transformer.forward_reference(&prompt, None));
        });
        runner.ratio(&format!("forward/fused_speedup/k={k}"), &reference, &fused);

        let simd = runner.bench(&format!("forward/simd/k={k}"), scaled(300), || {
            black_box(vectored.forward(&prompt));
        });
        runner.ratio(&format!("forward/simd_speedup/k={k}"), &fused, &simd);

        // Warm prefix cache on top of the fused path (the production setup).
        let cache = PrefixCache::default();
        transformer.forward_cached(&prompt, Some(&cache));
        let cached = runner.bench(&format!("forward/fused+cache/k={k}"), scaled(300), || {
            black_box(transformer.forward_cached(&prompt, Some(&cache)));
        });
        runner.ratio(&format!("forward/cache_speedup/k={k}"), &fused, &cached);
        runner.cache_counters(&format!("forward/prefix_cache/k={k}"), cache.stats());
    }

    runner.finish();
}
