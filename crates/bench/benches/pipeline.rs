//! End-to-end RAG round trip and full-report cost, sequential vs parallel.
//!
//! The `report/k=*/par4` vs `report/k=*/seq` ratio is the headline number for
//! the batched evaluation subsystem: on a ≥4-core machine the 4-thread worker
//! pool targets a ≥3× speedup over the sequential baseline (1-core CI runners
//! will show ~1× — the ratio is recorded in the `--json` output either way).
//! The parallel side is the *whole* subsystem — worker pool **plus** prefix
//! cache — measured against today's uncached sequential baseline; it is a
//! subsystem speedup, not a pure thread-scaling number.

use rage_bench::workloads::{
    bench_report_config, evaluator_for, parallel_evaluator_for, pipeline_for, synthetic,
};
use rage_bench::{black_box, scaled, section, Runner};
use rage_core::RageReport;

fn main() {
    let mut runner = Runner::from_args();

    section("pipeline: ask");
    for k in [3usize, 6, 10] {
        let scenario = synthetic(k);
        let pipeline = pipeline_for(&scenario);
        runner.bench(&format!("ask/k={k}"), scaled(50), || {
            black_box(
                pipeline
                    .ask(&scenario.question, scenario.retrieval_k)
                    .unwrap(),
            );
        });
    }

    section("pipeline: batched ask (ask_many over 8 queries)");
    for k in [3usize, 6] {
        let scenario = synthetic(k);
        let pipeline = pipeline_for(&scenario);
        let queries: Vec<&str> = (0..8).map(|_| scenario.question.as_str()).collect();
        runner.bench(&format!("ask_many/k={k}/q=8"), scaled(10), || {
            for response in pipeline.ask_many(&queries, scenario.retrieval_k) {
                black_box(response.unwrap());
            }
        });
    }

    section("pipeline: full report, sequential vs parallel worker pool");
    let config = bench_report_config();
    for k in [6usize, 10] {
        let scenario = synthetic(k);
        let seq = runner.bench(&format!("report/k={k}/seq"), scaled(10), || {
            let evaluator = evaluator_for(&scenario);
            black_box(RageReport::generate(&evaluator, &config).unwrap());
        });
        for threads in [2usize, 4] {
            let par = runner.bench(&format!("report/k={k}/par{threads}"), scaled(10), || {
                let evaluator = parallel_evaluator_for(&scenario, threads);
                black_box(RageReport::generate(&evaluator, &config).unwrap());
            });
            runner.ratio(&format!("report/k={k}/speedup@{threads}"), &seq, &par);
        }
    }

    runner.finish();
}
