//! End-to-end RAG round trip (retrieve + prompt + generate).

use rage_bench::workloads::{pipeline_for, synthetic};
use rage_bench::{bench, black_box, scaled, section};

fn main() {
    section("pipeline: ask");
    for k in [3usize, 6, 10] {
        let scenario = synthetic(k);
        let pipeline = pipeline_for(&scenario);
        bench(&format!("ask/k={k}"), scaled(50), || {
            black_box(
                pipeline
                    .ask(&scenario.question, scenario.retrieval_k)
                    .unwrap(),
            );
        });
    }
}
