//! # rage-bench
//!
//! A dependency-free micro-benchmark harness for the RAGE workspace.
//!
//! The environment has no access to `criterion`, so the bench targets use this
//! small harness instead. It provides the three things CI needs to track
//! performance over time:
//!
//! * **warm-up calibration** — instead of a fixed warm-up count, each case is
//!   warmed up until a wall-clock target is met (so fast cases warm caches and
//!   branch predictors properly while multi-second cases don't waste minutes);
//! * **outlier rejection** — per-iteration samples are recorded and the slow
//!   tail above the Tukey fence (`Q3 + 1.5·IQR`) is discarded before the mean
//!   is computed, which makes run-to-run numbers comparable on noisy machines;
//! * **a `--json` output mode** — pass `--json <path>` to a bench binary (or
//!   set `RAGE_BENCH_JSON=<path>`) and a [`Runner`] writes every result and
//!   every derived ratio to a machine-readable file that `bench_diff` can
//!   compare against a checked-in baseline.
//!
//! Absolute numbers are indicative only; the interesting outputs are the
//! *ratios* the paper's experiments compare (pruned vs exhaustive search,
//! `O(s·k³)` vs `O(k!)` placements, `O(k·s)` vs `O(k!)` sampling) and, since
//! the parallel evaluator landed, sequential vs parallel report cost.
//!
//! Run everything with `cargo bench`, or one target with
//! `cargo bench --bench optimal_permutations`. The `RAGE_BENCH_FAST=1`
//! environment variable shrinks iteration counts for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use rage_json::JsonValue;

pub use std::hint::black_box;

/// Timing result of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Label of the case.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u64,
    /// Number of calibrated warm-up iterations that preceded the timing.
    pub warmup_iters: u64,
    /// Total elapsed wall-clock time over the timed iterations.
    pub total: Duration,
    /// Fastest single iteration (over *all* samples).
    pub min: Duration,
    /// Mean per-iteration time after outlier rejection.
    pub mean: Duration,
    /// Median per-iteration time (robust to outliers by construction).
    pub median: Duration,
    /// Samples above the Tukey fence that were excluded from the mean.
    pub outliers_rejected: usize,
}

impl BenchResult {
    /// Mean time per iteration over the retained (non-outlier) samples.
    pub fn mean(&self) -> Duration {
        self.mean
    }
}

/// Whether `RAGE_BENCH_FAST=1` asked for a smoke run.
pub fn fast_mode() -> bool {
    std::env::var("RAGE_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale an iteration count down in fast mode (but never to zero).
pub fn scaled(iters: u64) -> u64 {
    if fast_mode() {
        (iters / 10).max(1)
    } else {
        iters
    }
}

/// Wall-clock warm-up target: enough to stabilise caches without dominating
/// the run (smaller in fast mode).
fn warmup_target() -> Duration {
    if fast_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(25)
    }
}

/// Upper bound on warm-up iterations: large enough that microsecond-scale
/// cases genuinely reach the wall-clock target (which is what bounds slow
/// cases — they exit after their first iteration crosses it), small enough to
/// cap pathological nanosecond-scale loops.
const MAX_WARMUP_ITERS: u64 = 100_000;

/// Calibrated warm-up: run `f` until the warm-up target elapses (at least
/// once, at most [`MAX_WARMUP_ITERS`] times). Returns the number of warm-up
/// runs.
fn calibrated_warmup<F: FnMut()>(f: &mut F) -> u64 {
    let target = warmup_target();
    let start = Instant::now();
    let mut count = 0u64;
    while count < MAX_WARMUP_ITERS {
        f();
        count += 1;
        if start.elapsed() >= target {
            break;
        }
    }
    count
}

/// Robust summary of per-iteration samples: `(mean, median, rejected)` where
/// the mean excludes samples above the Tukey fence `Q3 + 1.5·IQR`. Slow-tail
/// outliers (scheduler preemption, page faults) say nothing about the code
/// under test; fast samples are never rejected.
fn robust_summary(samples: &[Duration]) -> (Duration, Duration, usize) {
    debug_assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let quartile = |fraction: f64| -> Duration {
        let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
        sorted[idx]
    };
    let q1 = quartile(0.25);
    let q3 = quartile(0.75);
    let iqr = q3.saturating_sub(q1);
    let fence = q3 + iqr.mul_f64(1.5);
    let retained: Vec<Duration> = sorted.iter().copied().filter(|&s| s <= fence).collect();
    let rejected = sorted.len() - retained.len();
    let total: Duration = retained.iter().sum();
    let mean = total / retained.len().max(1) as u32;
    (mean, median, rejected)
}

/// Time `f` for `iters` iterations after a calibrated warm-up, with
/// per-iteration sampling and outlier-rejected statistics.
pub fn bench<F: FnMut()>(name: &str, iters: u64, mut f: F) -> BenchResult {
    let warmup_iters = calibrated_warmup(&mut f);
    let mut samples = Vec::with_capacity(iters as usize);
    let start = Instant::now();
    for _ in 0..iters {
        let iteration = Instant::now();
        f();
        samples.push(iteration.elapsed());
    }
    let total = start.elapsed();
    let min = samples.iter().copied().min().unwrap_or_default();
    let (mean, median, outliers_rejected) = robust_summary(&samples);
    let result = BenchResult {
        name: name.to_string(),
        iters,
        warmup_iters,
        total,
        min,
        mean,
        median,
        outliers_rejected,
    };
    print_result(&result);
    result
}

fn print_result(result: &BenchResult) {
    println!(
        "{:<48} {:>8} iters  mean {:>12?}  median {:>12?}  min {:>12?}  ({} outliers)",
        result.name, result.iters, result.mean, result.median, result.min, result.outliers_rejected
    );
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// A benchmark session: runs cases, tracks results and derived ratios, and
/// writes them as JSON when `--json <path>` (or `RAGE_BENCH_JSON=<path>`) was
/// given — the output `bench_diff` consumes for regression checks.
#[derive(Debug, Default)]
pub struct Runner {
    json_path: Option<String>,
    results: Vec<BenchResult>,
    ratios: Vec<(String, f64)>,
    counters: Vec<(String, f64)>,
}

impl Runner {
    /// Build a runner from the process arguments (`--json <path>`, with the
    /// `RAGE_BENCH_JSON` environment variable as fallback).
    ///
    /// Cargo's libtest shim flags (`--bench`, filters) are ignored, so bench
    /// binaries remain runnable both via `cargo bench` and directly.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut json_path = std::env::var("RAGE_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty());
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--json" {
                if let Some(path) = args.get(i + 1) {
                    json_path = Some(path.clone());
                    i += 1;
                }
            }
            i += 1;
        }
        Self {
            json_path,
            ..Self::default()
        }
    }

    /// A runner that always writes to `path` (used by tests).
    pub fn with_json_path(path: impl Into<String>) -> Self {
        Self {
            json_path: Some(path.into()),
            ..Self::default()
        }
    }

    /// Run and record one case (see the free [`bench`] function).
    pub fn bench<F: FnMut()>(&mut self, name: &str, iters: u64, f: F) -> BenchResult {
        let result = bench(name, iters, f);
        self.results.push(result.clone());
        result
    }

    /// Record a derived ratio `numerator.mean / denominator.mean` — e.g. a
    /// sequential-over-parallel speedup — and print it.
    pub fn ratio(&mut self, name: &str, numerator: &BenchResult, denominator: &BenchResult) -> f64 {
        let denom = denominator.mean.as_secs_f64();
        let value = if denom > 0.0 {
            numerator.mean.as_secs_f64() / denom
        } else {
            0.0
        };
        println!("{name:<48} {value:>8.2}x");
        self.ratios.push((name.to_string(), value));
        value
    }

    /// Record a named scalar alongside the timings — cache hit/miss counts,
    /// sizes, whatever explains the latency numbers. Counters land in the
    /// JSON document under `counters` and are report-only: `bench_diff`
    /// never gates on them, but their drift is visible in the artifacts.
    pub fn counter(&mut self, name: &str, value: f64) {
        println!("{name:<48} {value:>10.3}");
        self.counters.push((name.to_string(), value));
    }

    /// Record a [`CacheStats`](rage_llm::CacheStats) triple under a prefix:
    /// `<prefix>/hits`, `<prefix>/misses` and `<prefix>/hit_rate`.
    pub fn cache_counters(&mut self, prefix: &str, stats: rage_llm::CacheStats) {
        self.counter(&format!("{prefix}/hits"), stats.hits as f64);
        self.counter(&format!("{prefix}/misses"), stats.misses as f64);
        self.counter(&format!("{prefix}/hit_rate"), stats.hit_rate());
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialise every recorded result and ratio as the `rage-bench/v1` JSON
    /// document.
    pub fn to_json(&self) -> JsonValue {
        let benches = self
            .results
            .iter()
            .map(|r| {
                JsonValue::Object(vec![
                    ("name".into(), JsonValue::String(r.name.clone())),
                    ("iters".into(), JsonValue::Number(r.iters as f64)),
                    (
                        "warmup_iters".into(),
                        JsonValue::Number(r.warmup_iters as f64),
                    ),
                    (
                        "total_ns".into(),
                        JsonValue::Number(r.total.as_nanos() as f64),
                    ),
                    ("min_ns".into(), JsonValue::Number(r.min.as_nanos() as f64)),
                    (
                        "mean_ns".into(),
                        JsonValue::Number(r.mean.as_nanos() as f64),
                    ),
                    (
                        "median_ns".into(),
                        JsonValue::Number(r.median.as_nanos() as f64),
                    ),
                    (
                        "outliers_rejected".into(),
                        JsonValue::Number(r.outliers_rejected as f64),
                    ),
                ])
            })
            .collect();
        let named_numbers = |pairs: &[(String, f64)]| {
            pairs
                .iter()
                .map(|(name, value)| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::String(name.clone())),
                        ("value".into(), JsonValue::Number(*value)),
                    ])
                })
                .collect::<Vec<_>>()
        };
        JsonValue::Object(vec![
            (
                "schema".into(),
                JsonValue::String("rage-bench/v1".to_string()),
            ),
            ("fast_mode".into(), JsonValue::Bool(fast_mode())),
            ("benches".into(), JsonValue::Array(benches)),
            (
                "ratios".into(),
                JsonValue::Array(named_numbers(&self.ratios)),
            ),
            (
                "counters".into(),
                JsonValue::Array(named_numbers(&self.counters)),
            ),
        ])
    }

    /// Write the JSON document if a path was requested; call once at the end
    /// of a bench binary's `main`.
    pub fn finish(self) {
        if let Some(path) = &self.json_path {
            let rendered = self.to_json().render();
            std::fs::write(path, rendered + "\n")
                .unwrap_or_else(|err| panic!("failed to write bench JSON to {path}: {err}"));
            println!("\nwrote bench JSON: {path}");
        }
    }
}

/// Shared benchmark workloads (pipelines and evaluators over the scenarios).
pub mod workloads {
    use std::sync::Arc;

    use rage_core::explanation::ReportConfig;
    use rage_core::{Evaluator, ParallelEvaluator, RagPipeline};
    use rage_datasets::synthetic::{ranking_scenario, RankingConfig};
    use rage_datasets::Scenario;
    use rage_llm::cache::PrefixCache;
    use rage_llm::kernels::KernelBackend;
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{IndexBuilder, Searcher};

    /// A pipeline over a scenario's corpus, with its prior knowledge attached.
    pub fn pipeline_for(scenario: &Scenario) -> RagPipeline {
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
        RagPipeline::new(searcher, Arc::new(llm))
    }

    /// [`pipeline_for`] with an explicit kernel backend, so benches can put
    /// scalar and SIMD legs side by side regardless of which backend the
    /// `simd` cargo feature makes the default.
    pub fn pipeline_for_with_backend(scenario: &Scenario, backend: KernelBackend) -> RagPipeline {
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()))
            .with_kernel_backend(backend);
        RagPipeline::new(searcher, Arc::new(llm))
    }

    /// Like [`pipeline_for`] but with a shared [`PrefixCache`] attached to the
    /// model, so forwards reuse per-`(token, position)` state. The cache
    /// handle is returned alongside the pipeline so callers can report
    /// [`rage_llm::CacheStats`] next to their timings.
    pub fn cached_pipeline_and_cache_for(scenario: &Scenario) -> (RagPipeline, Arc<PrefixCache>) {
        let cache = Arc::new(PrefixCache::default());
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()))
            .with_prefix_cache(Arc::clone(&cache));
        (RagPipeline::new(searcher, Arc::new(llm)), cache)
    }

    /// [`cached_pipeline_and_cache_for`] without the stats handle.
    pub fn cached_pipeline_for(scenario: &Scenario) -> RagPipeline {
        cached_pipeline_and_cache_for(scenario).0
    }

    /// A fresh evaluator (empty cache) over a scenario's retrieved context.
    pub fn evaluator_for(scenario: &Scenario) -> Evaluator {
        let pipeline = pipeline_for(scenario);
        let (_, evaluator) = pipeline
            .ask_and_explain(&scenario.question, scenario.retrieval_k)
            .expect("scenario question retrieves a context");
        evaluator
    }

    /// [`evaluator_for`] with an explicit kernel backend (see
    /// [`pipeline_for_with_backend`]).
    pub fn evaluator_for_with_backend(scenario: &Scenario, backend: KernelBackend) -> Evaluator {
        let pipeline = pipeline_for_with_backend(scenario, backend);
        let (_, evaluator) = pipeline
            .ask_and_explain(&scenario.question, scenario.retrieval_k)
            .expect("scenario question retrieves a context");
        evaluator
    }

    /// A fresh `threads`-worker parallel evaluator (empty cache, prefix-cached
    /// model) over a scenario's retrieved context, with the model's prefix
    /// cache handle for stats reporting.
    pub fn parallel_evaluator_and_cache_for(
        scenario: &Scenario,
        threads: usize,
    ) -> (ParallelEvaluator, Arc<PrefixCache>) {
        let (pipeline, cache) = cached_pipeline_and_cache_for(scenario);
        let response = pipeline
            .ask(&scenario.question, scenario.retrieval_k)
            .expect("scenario question retrieves a context");
        (
            pipeline.parallel_evaluator(response.context, threads),
            cache,
        )
    }

    /// [`parallel_evaluator_and_cache_for`] without the stats handle.
    pub fn parallel_evaluator_for(scenario: &Scenario, threads: usize) -> ParallelEvaluator {
        parallel_evaluator_and_cache_for(scenario, threads).0
    }

    /// A synthetic ranking scenario with `k` sources.
    pub fn synthetic(k: usize) -> Scenario {
        ranking_scenario(RankingConfig {
            num_sources: k,
            ..RankingConfig::default()
        })
    }

    /// The trimmed report configuration the report benches use: every search
    /// is exercised but budgets are bounded so one report costs tens of
    /// evaluations rather than hundreds.
    pub fn bench_report_config() -> ReportConfig {
        ReportConfig {
            num_optimal_orders: 2,
            combination_budget: Some(48),
            permutation_budget: Some(32),
            insight_samples: 12,
            seed: 7,
            ..ReportConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        let result = bench("noop", 10, || {
            count += 1;
            black_box(count);
        });
        assert_eq!(result.iters, 10);
        // 10 timed + at least 1 warm-up.
        assert!(count >= 11);
        assert!(result.warmup_iters >= 1);
        assert!(result.mean() >= result.min);
        assert!(result.median >= result.min);
    }

    #[test]
    fn scaled_never_reaches_zero() {
        assert!(scaled(1) >= 1);
        assert!(scaled(1000) >= 1);
    }

    #[test]
    fn outlier_rejection_discards_the_slow_tail() {
        let mut samples = vec![Duration::from_micros(100); 20];
        samples.push(Duration::from_millis(50)); // scheduler hiccup
        let (mean, median, rejected) = robust_summary(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(median, Duration::from_micros(100));
        assert_eq!(mean, Duration::from_micros(100));
    }

    #[test]
    fn uniform_samples_reject_nothing() {
        let samples = vec![Duration::from_micros(500); 16];
        let (mean, _, rejected) = robust_summary(&samples);
        assert_eq!(rejected, 0);
        assert_eq!(mean, Duration::from_micros(500));
    }

    #[test]
    fn runner_records_results_ratios_and_writes_json() {
        let path = std::env::temp_dir().join("rage_bench_runner_test.json");
        let path_str = path.to_string_lossy().to_string();
        let mut runner = Runner::with_json_path(&path_str);
        let a = runner.bench("case/a", 5, || {
            black_box(fibonacci(12));
        });
        let b = runner.bench("case/b", 5, || {
            black_box(fibonacci(12));
        });
        let speedup = runner.ratio("case/speedup", &a, &b);
        assert!(speedup > 0.0);
        assert_eq!(runner.results().len(), 2);
        runner.counter("case/a/cache_hits", 17.0);
        runner.cache_counters(
            "case/b/cache",
            rage_llm::CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
            },
        );

        runner.finish();
        let raw = std::fs::read_to_string(&path).unwrap();
        let parsed = JsonValue::parse(raw.trim()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some("rage-bench/v1")
        );
        let benches = match parsed.get("benches") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("benches missing: {other:?}"),
        };
        assert_eq!(benches.len(), 2);
        assert_eq!(
            benches[0].get("name").and_then(|n| n.as_str()),
            Some("case/a")
        );
        assert!(matches!(
            benches[0].get("mean_ns"),
            Some(JsonValue::Number(n)) if *n > 0.0
        ));
        let ratios = match parsed.get("ratios") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("ratios missing: {other:?}"),
        };
        assert_eq!(
            ratios[0].get("name").and_then(|n| n.as_str()),
            Some("case/speedup")
        );
        let counters = match parsed.get("counters") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("counters missing: {other:?}"),
        };
        assert_eq!(counters.len(), 4);
        assert_eq!(
            counters[0].get("name").and_then(|n| n.as_str()),
            Some("case/a/cache_hits")
        );
        assert!(matches!(
            counters[0].get("value"),
            Some(JsonValue::Number(n)) if *n == 17.0
        ));
        assert_eq!(
            counters[3].get("name").and_then(|n| n.as_str()),
            Some("case/b/cache/hit_rate")
        );
        assert!(matches!(
            counters[3].get("value"),
            Some(JsonValue::Number(n)) if (*n - 0.75).abs() < 1e-12
        ));
        let _ = std::fs::remove_file(&path);
    }

    fn fibonacci(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fibonacci(n - 1) + fibonacci(n - 2)
        }
    }
}
