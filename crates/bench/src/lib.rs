//! # rage-bench
//!
//! A dependency-free micro-benchmark harness for the RAGE workspace.
//!
//! The environment has no access to `criterion`, so the bench targets use this
//! small fixed-iteration harness instead: warm up, time a batch, report
//! min/mean per-iteration latency. Absolute numbers are indicative only; the
//! interesting outputs are the *ratios* the paper's experiments compare
//! (pruned vs exhaustive search, `O(s·k³)` vs `O(k!)` placements, `O(k·s)` vs
//! `O(k!)` sampling).
//!
//! Run everything with `cargo bench`, or one target with
//! `cargo bench --bench optimal_permutations`. The `RAGE_BENCH_FAST=1`
//! environment variable shrinks iteration counts for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing result of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Label of the case.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u64,
    /// Total elapsed wall-clock time.
    pub total: Duration,
    /// Fastest single iteration.
    pub min: Duration,
}

impl BenchResult {
    /// Mean time per iteration.
    pub fn mean(&self) -> Duration {
        self.total / self.iters.max(1) as u32
    }
}

/// Whether `RAGE_BENCH_FAST=1` asked for a smoke run.
pub fn fast_mode() -> bool {
    std::env::var("RAGE_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale an iteration count down in fast mode (but never to zero).
pub fn scaled(iters: u64) -> u64 {
    if fast_mode() {
        (iters / 10).max(1)
    } else {
        iters
    }
}

/// Time `f` for `iters` iterations after `iters / 10 + 1` warm-up runs.
pub fn bench<F: FnMut()>(name: &str, iters: u64, mut f: F) -> BenchResult {
    for _ in 0..(iters / 10 + 1) {
        f();
    }
    let mut min = Duration::MAX;
    let start = Instant::now();
    for _ in 0..iters {
        let iteration = Instant::now();
        f();
        min = min.min(iteration.elapsed());
    }
    let total = start.elapsed();
    let result = BenchResult {
        name: name.to_string(),
        iters,
        total,
        min,
    };
    print_result(&result);
    result
}

fn print_result(result: &BenchResult) {
    println!(
        "{:<44} {:>10} iters  mean {:>12?}  min {:>12?}",
        result.name,
        result.iters,
        result.mean(),
        result.min
    );
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Shared benchmark workloads (pipelines and evaluators over the scenarios).
pub mod workloads {
    use std::sync::Arc;

    use rage_core::{Evaluator, RagPipeline};
    use rage_datasets::synthetic::{ranking_scenario, RankingConfig};
    use rage_datasets::Scenario;
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{IndexBuilder, Searcher};

    /// A pipeline over a scenario's corpus, with its prior knowledge attached.
    pub fn pipeline_for(scenario: &Scenario) -> RagPipeline {
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
        RagPipeline::new(searcher, Arc::new(llm))
    }

    /// A fresh evaluator (empty cache) over a scenario's retrieved context.
    pub fn evaluator_for(scenario: &Scenario) -> Evaluator {
        let pipeline = pipeline_for(scenario);
        let (_, evaluator) = pipeline
            .ask_and_explain(&scenario.question, scenario.retrieval_k)
            .expect("scenario question retrieves a context");
        evaluator
    }

    /// A synthetic ranking scenario with `k` sources.
    pub fn synthetic(k: usize) -> Scenario {
        ranking_scenario(RankingConfig {
            num_sources: k,
            ..RankingConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        let result = bench("noop", 10, || {
            count += 1;
            black_box(count);
        });
        assert_eq!(result.iters, 10);
        // 10 timed + at least 1 warm-up.
        assert!(count >= 11);
        assert!(result.mean() >= result.min);
    }

    #[test]
    fn scaled_never_reaches_zero() {
        assert!(scaled(1) >= 1);
        assert!(scaled(1000) >= 1);
    }
}
