//! stub
