//! Compare two `rage-bench/v1` JSON files and fail on regressions.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--threshold 0.20]
//!            [--require <bench-name>]...
//! ```
//!
//! For every bench name present in both files the mean latency is compared;
//! the process exits non-zero when any `--require`d bench regressed by more
//! than the threshold (default 20%), or when a required bench is missing from
//! either file. Benches not listed with `--require` are reported but never
//! fail the run — wall-clock numbers from unrelated runner classes drift, and
//! only the explicitly tracked hot paths should gate CI (refresh the
//! checked-in baseline when the runner class changes).

use std::collections::BTreeMap;
use std::process::ExitCode;

use rage_json::JsonValue;

fn load_means(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let raw = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let parsed =
        JsonValue::parse(raw.trim()).map_err(|err| format!("cannot parse {path}: {err}"))?;
    if parsed.get("schema").and_then(|s| s.as_str()) != Some("rage-bench/v1") {
        return Err(format!("{path}: not a rage-bench/v1 document"));
    }
    let mut means = BTreeMap::new();
    if let Some(JsonValue::Array(benches)) = parsed.get("benches") {
        for bench in benches {
            let name = bench.get("name").and_then(|n| n.as_str());
            let mean = match bench.get("mean_ns") {
                Some(JsonValue::Number(n)) => Some(*n),
                _ => None,
            };
            if let (Some(name), Some(mean)) = (name, mean) {
                means.insert(name.to_string(), mean);
            }
        }
    }
    Ok(means)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.20f64;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold needs a number");
                    std::process::exit(2);
                });
            }
            "--require" => {
                i += 1;
                match args.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => {
                        eprintln!("--require needs a bench name");
                        return ExitCode::from(2);
                    }
                }
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_diff <baseline.json> <current.json> [--threshold 0.20] [--require name]..."
        );
        return ExitCode::from(2);
    }

    let (baseline, current) = match (load_means(&paths[0]), load_means(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("bench_diff: {err}");
            return ExitCode::from(2);
        }
    };

    let mut failures = Vec::new();
    println!(
        "{:<40} {:>14} {:>14} {:>9}  gate",
        "bench", "baseline", "current", "delta"
    );
    for (name, base_mean) in &baseline {
        let Some(cur_mean) = current.get(name) else {
            if required.iter().any(|r| r == name) {
                failures.push(format!("{name}: missing from {}", paths[1]));
            }
            continue;
        };
        let delta = if *base_mean > 0.0 {
            cur_mean / base_mean - 1.0
        } else {
            0.0
        };
        let gated = required.iter().any(|r| r == name);
        let regressed = gated && delta > threshold;
        println!(
            "{:<40} {:>12.0}ns {:>12.0}ns {:>+8.1}%  {}",
            name,
            base_mean,
            cur_mean,
            delta * 100.0,
            match (gated, regressed) {
                (true, true) => "FAIL",
                (true, false) => "ok",
                (false, _) => "-",
            }
        );
        if regressed {
            failures.push(format!(
                "{name}: {:.1}% slower than baseline (threshold {:.0}%)",
                delta * 100.0,
                threshold * 100.0
            ));
        }
    }
    for name in &required {
        if !baseline.contains_key(name) {
            failures.push(format!("{name}: missing from {}", paths[0]));
        }
    }

    if failures.is_empty() {
        println!(
            "\nbench_diff: no gated regressions (threshold {:.0}%)",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench_diff: {} regression(s):", failures.len());
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        ExitCode::FAILURE
    }
}
