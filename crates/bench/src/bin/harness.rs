//! Smoke harness: run a full explanation over every demonstration scenario —
//! sequentially and through the 4-thread parallel evaluator — and print the
//! summaries plus cost accounting and speedups.
//!
//! `cargo run -p rage-bench --bin harness [--fast] [--threads N] [--json PATH]`
//!
//! With `--json PATH` a machine-readable summary is written: per scenario the
//! sequential and parallel wall-clock, the `speedup@N` ratio, the LLM-call
//! counts and the answers, so CI can diff explanation cost across commits.

use std::time::Instant;

use rage_bench::workloads::{evaluator_for, parallel_evaluator_and_cache_for};
use rage_core::explanation::ReportConfig;
use rage_core::{Evaluate, RageReport};
use rage_datasets::{big_three, timeline, us_open};
use rage_json::JsonValue;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut config = ReportConfig::default();
    if fast {
        config.insight_samples = 8;
        config.permutation_budget = Some(32);
    }

    let mut scenario_values = Vec::new();
    let mut failures = 0usize;
    for scenario in [
        big_three::scenario(),
        us_open::scenario(),
        timeline::scenario(),
    ] {
        println!("=== scenario: {} ===", scenario.name);

        // Sequential baseline.
        let sequential = evaluator_for(&scenario);
        let seq_start = Instant::now();
        let seq_report = match RageReport::generate(&sequential, &config) {
            Ok(report) => report,
            Err(err) => {
                println!("error: {err}\n");
                failures += 1;
                continue;
            }
        };
        let seq_elapsed = seq_start.elapsed();

        // The same explanation through the worker pool + prefix cache.
        let (parallel, prefix_cache) = parallel_evaluator_and_cache_for(&scenario, threads);
        let par_start = Instant::now();
        let par_report = match RageReport::generate(&parallel, &config) {
            Ok(report) => report,
            Err(err) => {
                println!("error: {err}\n");
                failures += 1;
                continue;
            }
        };
        let par_elapsed = par_start.elapsed();
        let speedup = seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(1e-9);

        assert_eq!(
            seq_report.full_context_answer, par_report.full_context_answer,
            "parallel evaluation must not change answers"
        );

        let cache_stats = prefix_cache.stats();
        print!("{}", seq_report.summary());
        println!(
            "expected answer: {} | sequential: {seq_elapsed:?} | parallel({threads}): \
             {par_elapsed:?} | speedup@{threads}: {speedup:.2}x | prefix cache: \
             {} hits / {} misses ({:.1}% hit rate)\n",
            scenario.expected_full_context_answer,
            cache_stats.hits,
            cache_stats.misses,
            cache_stats.hit_rate() * 100.0
        );

        scenario_values.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::String(scenario.name.clone())),
            (
                "answer".into(),
                JsonValue::String(seq_report.full_context_answer.clone()),
            ),
            (
                "sequential_ns".into(),
                JsonValue::Number(seq_elapsed.as_nanos() as f64),
            ),
            (
                "parallel_ns".into(),
                JsonValue::Number(par_elapsed.as_nanos() as f64),
            ),
            ("threads".into(), JsonValue::Number(threads as f64)),
            ("speedup".into(), JsonValue::Number(speedup)),
            (
                "sequential_llm_calls".into(),
                JsonValue::Number(seq_report.llm_calls as f64),
            ),
            (
                "parallel_llm_calls".into(),
                JsonValue::Number(par_report.llm_calls as f64),
            ),
            // The evaluator's perturbation-memo hit rate.
            (
                "parallel_memo_hit_rate".into(),
                JsonValue::Number(parallel.cache_stats().hit_rate()),
            ),
            // The SimLlm prefix cache's own counters: reuse of per-(token,
            // position) embedding/projection state across perturbed forwards.
            (
                "prefix_cache_hits".into(),
                JsonValue::Number(cache_stats.hits as f64),
            ),
            (
                "prefix_cache_misses".into(),
                JsonValue::Number(cache_stats.misses as f64),
            ),
            (
                "prefix_cache_hit_rate".into(),
                JsonValue::Number(cache_stats.hit_rate()),
            ),
        ]));
    }

    if let Some(path) = json_path {
        let document = JsonValue::Object(vec![
            (
                "schema".into(),
                JsonValue::String("rage-harness/v1".to_string()),
            ),
            ("threads".into(), JsonValue::Number(threads as f64)),
            ("fast".into(), JsonValue::Bool(fast)),
            ("scenarios".into(), JsonValue::Array(scenario_values)),
        ]);
        std::fs::write(&path, document.render() + "\n")
            .unwrap_or_else(|err| panic!("failed to write harness JSON to {path}: {err}"));
        println!("wrote harness JSON: {path}");
    }

    // A scenario that cannot be explained is a failed smoke run — exit
    // non-zero so the CI step goes red instead of green-with-errors.
    if failures > 0 {
        eprintln!("harness: {failures} scenario run(s) failed");
        std::process::exit(1);
    }
}
