//! Smoke harness: run a full explanation over every demonstration scenario
//! and print the summaries plus cost accounting.
//!
//! `cargo run -p rage-bench --bin harness [--fast]`

use rage_bench::workloads::evaluator_for;
use rage_core::explanation::ReportConfig;
use rage_core::RageReport;
use rage_datasets::{big_three, timeline, us_open};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let mut config = ReportConfig::default();
    if fast {
        config.insight_samples = 8;
        config.permutation_budget = Some(32);
    }

    for scenario in [
        big_three::scenario(),
        us_open::scenario(),
        timeline::scenario(),
    ] {
        println!("=== scenario: {} ===", scenario.name);
        let evaluator = evaluator_for(&scenario);
        let start = std::time::Instant::now();
        match RageReport::generate(&evaluator, &config) {
            Ok(report) => {
                print!("{}", report.summary());
                println!(
                    "expected answer: {} | elapsed: {:?}\n",
                    scenario.expected_full_context_answer,
                    start.elapsed()
                );
            }
            Err(err) => {
                println!("error: {err}\n");
            }
        }
    }
}
