//! `loadtest`: drive the `rage-server` HTTP service and record latency
//! percentiles.
//!
//! ```text
//! loadtest [--addr HOST:PORT] [--clients N] [--requests N]
//!          [--scenario NAME] [--out PATH] [--mode close|keep-alive|both]
//!          [--keep-alive]
//! ```
//!
//! Without `--addr` the bin boots an in-process [`rage_server::Server`] on an
//! ephemeral port (the CI path — no separate process to babysit); with
//! `--addr` it targets an already-running server. `--clients` concurrent
//! client threads each issue `--requests` requests in a fixed rotation of the
//! serving endpoints (`GET /scenarios`, `GET /report?format=json`, the
//! same report with `deadline_ms=50` — the anytime SLO path, measured as its
//! own `report_anytime` bucket — and `POST /ask`), plus an `entity_resolve`
//! bucket: batch entity-resolution lookups (`POST /ask` against the
//! `entity_registry` scenario, rotating through the three affiliation query
//! forms), the workload whose pruned retrieval path the retrieval benchmark
//! gates.
//!
//! Two connection disciplines are measured (both by default, so one
//! `SERVER_pr.json` records the connection-churn cost side by side):
//!
//! * **close** — every request on a fresh connection with
//!   `Connection: close`, the pre-keep-alive behaviour;
//! * **keep_alive** — each client holds one persistent connection and frames
//!   responses by `Content-Length`, reconnecting only when the server closes
//!   (idle timeout or per-connection request cap).
//!
//! Per-endpoint latencies are aggregated into p50/p95/p99 (nearest-rank) per
//! mode and written as JSON to `--out` (default `SERVER_pr.json`).
//!
//! Caveat that also lives in the server crate docs: on the 1-CPU benching
//! container the worker pool only interleaves, so these percentiles
//! understate a multicore deployment.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rage_datasets::entity_registry::{self, EntityRegistryConfig};
use rage_json::JsonValue;
use rage_report::Service;
use rage_server::{Server, ServerConfig};

fn usage() -> &'static str {
    "usage: loadtest [--addr HOST:PORT] [--clients N] [--requests N] \
     [--scenario NAME] [--out PATH] [--mode close|keep-alive|both] [--keep-alive]\n\
     \n\
     Drives the rage-server HTTP service (an in-process one unless --addr is\n\
     given) and writes p50/p95/p99 latencies per endpoint and connection\n\
     mode to --out (default SERVER_pr.json). --mode picks the connection\n\
     discipline (default both); --keep-alive is shorthand for\n\
     --mode keep-alive.\n"
}

/// Connection discipline of one measurement pass.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Fresh connection per request, `Connection: close`.
    Close,
    /// One persistent connection per client, `Content-Length`-framed reads.
    KeepAlive,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Close => "close",
            Mode::KeepAlive => "keep_alive",
        }
    }
}

#[derive(Clone)]
struct LoadConfig {
    addr: Option<String>,
    clients: usize,
    requests_per_client: usize,
    scenario: String,
    out: String,
    modes: Vec<Mode>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: None,
            clients: 4,
            requests_per_client: 25,
            scenario: "us_open".to_string(),
            out: "SERVER_pr.json".to_string(),
            modes: vec![Mode::Close, Mode::KeepAlive],
        }
    }
}

/// One timed request: endpoint label + latency.
struct Sample {
    endpoint: &'static str,
    latency: Duration,
    status: u16,
}

/// Issue one request on a fresh connection and read the full response.
fn timed_request(addr: SocketAddr, raw: &[u8], endpoint: &'static str) -> Result<Sample, String> {
    let start = Instant::now();
    let mut stream =
        TcpStream::connect(addr).map_err(|err| format!("{endpoint}: connect: {err}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|err| format!("{endpoint}: timeout: {err}"))?;
    stream
        .write_all(raw)
        .map_err(|err| format!("{endpoint}: write: {err}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|err| format!("{endpoint}: read: {err}"))?;
    let latency = start.elapsed();
    let status: u16 = std::str::from_utf8(&response)
        .ok()
        .and_then(|text| text.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("{endpoint}: unreadable response"))?;
    Ok(Sample {
        endpoint,
        latency,
        status,
    })
}

/// One persistent connection: read one `Content-Length`-framed response,
/// returning `(status, server_keeps_alive)`.
fn read_framed(reader: &mut BufReader<TcpStream>) -> Result<(u16, bool), String> {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|err| format!("framed read: {err}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("unreadable status line: {head:?}"))?;
    let mut keeps_alive = false;
    let mut content_length = 0usize;
    for line in head.lines() {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length: {line:?}"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keeps_alive = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|err| format!("framed body read: {err}"))?;
    Ok((status, keeps_alive))
}

/// One client's requests over a persistent connection, reconnecting only when
/// the server closes it. Increments `connections` per connect.
fn keep_alive_client(
    addr: SocketAddr,
    requests: &[(&'static str, Vec<u8>)],
    count: usize,
    offset: usize,
    connections: &AtomicU64,
) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::with_capacity(count);
    let mut reader: Option<BufReader<TcpStream>> = None;
    for i in 0..count {
        let (endpoint, raw) = &requests[(offset + i) % requests.len()];
        let mut conn = match reader.take() {
            Some(conn) => conn,
            None => {
                let stream = TcpStream::connect(addr)
                    .map_err(|err| format!("{endpoint}: connect: {err}"))?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .map_err(|err| format!("{endpoint}: timeout: {err}"))?;
                connections.fetch_add(1, Ordering::Relaxed);
                BufReader::new(stream)
            }
        };
        let start = Instant::now();
        conn.get_ref()
            .write_all(raw)
            .map_err(|err| format!("{endpoint}: write: {err}"))?;
        let (status, keeps_alive) = read_framed(&mut conn)?;
        samples.push(Sample {
            endpoint,
            latency: start.elapsed(),
            status,
        });
        if keeps_alive {
            reader = Some(conn);
        }
    }
    Ok(samples)
}

/// Nearest-rank percentile over sorted `samples`.
///
/// Pure integer math: the nearest-rank definition is `rank = ⌈p·n/100⌉`
/// (1-based), which `(p · n).div_ceil(100)` computes exactly — no float
/// rounding at the `p·n/100` boundaries where `ceil` on a binary-float
/// product can land one rank off (e.g. `29·0.35` style artifacts). `p` is
/// clamped to `1..=100`; `p = 100` is the maximum by construction.
fn percentile(sorted: &[Duration], p: u64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let n = sorted.len() as u64;
    let rank = (p.clamp(1, 100) * n).div_ceil(100).max(1);
    sorted[rank as usize - 1]
}

/// Whether the nearest-rank percentile `p` saturates to the sample maximum
/// for `n` samples — i.e. `⌈p·n/100⌉ == n` while `p < 100`.
///
/// With few samples the upper percentiles silently collapse onto the max
/// (p99 equals the max for every `n < 100`), which reads like a tail
/// latency measurement but is really just `max_us`. The summary carries
/// this flag so dashboards can grey the value out instead of plotting it.
fn percentile_saturated(n: usize, p: u64) -> bool {
    n > 0 && p < 100 && (p.clamp(1, 100) * n as u64).div_ceil(100) == n as u64
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Percentile summary of one endpoint's samples, as a JSON object.
fn summarise(latencies: &mut [Duration]) -> JsonValue {
    latencies.sort();
    let total: Duration = latencies.iter().sum();
    let mean = if latencies.is_empty() {
        Duration::ZERO
    } else {
        total / latencies.len() as u32
    };
    JsonValue::Object(vec![
        ("requests".into(), JsonValue::Number(latencies.len() as f64)),
        (
            "p50_us".into(),
            JsonValue::Number(micros(percentile(latencies, 50))),
        ),
        (
            "p95_us".into(),
            JsonValue::Number(micros(percentile(latencies, 95))),
        ),
        (
            "p99_us".into(),
            JsonValue::Number(micros(percentile(latencies, 99))),
        ),
        (
            "p95_saturated".into(),
            JsonValue::Bool(percentile_saturated(latencies.len(), 95)),
        ),
        (
            "p99_saturated".into(),
            JsonValue::Bool(percentile_saturated(latencies.len(), 99)),
        ),
        ("mean_us".into(), JsonValue::Number(micros(mean))),
        (
            "min_us".into(),
            JsonValue::Number(micros(latencies.first().copied().unwrap_or(Duration::ZERO))),
        ),
        (
            "max_us".into(),
            JsonValue::Number(micros(latencies.last().copied().unwrap_or(Duration::ZERO))),
        ),
    ])
}

fn parse_args(args: &[String]) -> Result<LoadConfig, String> {
    let mut config = LoadConfig::default();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = Some(value(args, i, "--addr")?),
            "--clients" => {
                config.clients = value(args, i, "--clients")?
                    .parse()
                    .map_err(|_| "--clients needs a positive integer".to_string())?;
                if config.clients == 0 {
                    return Err("--clients needs a positive integer".to_string());
                }
            }
            "--requests" => {
                config.requests_per_client = value(args, i, "--requests")?
                    .parse()
                    .map_err(|_| "--requests needs a positive integer".to_string())?;
                if config.requests_per_client == 0 {
                    return Err("--requests needs a positive integer".to_string());
                }
            }
            "--scenario" => config.scenario = value(args, i, "--scenario")?,
            "--out" => config.out = value(args, i, "--out")?,
            "--keep-alive" => {
                config.modes = vec![Mode::KeepAlive];
                i += 1;
                continue;
            }
            "--mode" => {
                config.modes = match value(args, i, "--mode")?.as_str() {
                    "close" => vec![Mode::Close],
                    "keep-alive" | "keep_alive" => vec![Mode::KeepAlive],
                    "both" => vec![Mode::Close, Mode::KeepAlive],
                    other => {
                        return Err(format!(
                            "--mode must be close, keep-alive or both (got {other:?})"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
        i += 2;
    }
    Ok(config)
}

fn run(config: LoadConfig) -> Result<(), String> {
    // Target: an external server, or an in-process one on an ephemeral port.
    let (addr, in_process) = match &config.addr {
        Some(addr) => (
            addr.to_socket_addrs()
                .map_err(|err| format!("cannot resolve {addr}: {err}"))?
                .next()
                .ok_or_else(|| format!("cannot resolve {addr}"))?,
            None,
        ),
        None => {
            let server = Server::start(
                "127.0.0.1:0",
                Arc::new(Service::new()),
                ServerConfig {
                    threads: config.clients.max(2),
                    ..ServerConfig::default()
                },
            )
            .map_err(|err| format!("cannot start in-process server: {err}"))?;
            (server.addr(), Some(server))
        }
    };

    let scenario = &config.scenario;
    let ask_body = format!(
        r#"{{"scenario": "{scenario}", "query": "who won the championship final", "k": 3}}"#
    );
    // Close-mode requests carry an explicit `Connection: close`; keep-alive
    // requests rely on the HTTP/1.1 default so the connection persists.
    let build_requests = |close: bool| -> Vec<(&'static str, Vec<u8>)> {
        let connection = if close { "Connection: close\r\n" } else { "" };
        let mut requests = vec![
            (
                "scenarios",
                format!("GET /scenarios HTTP/1.1\r\nHost: loadtest\r\n{connection}\r\n")
                    .into_bytes(),
            ),
            (
                "report_json",
                format!(
                    "GET /report?scenario={scenario}&format=json HTTP/1.1\r\nHost: loadtest\r\n{connection}\r\n"
                )
                .into_bytes(),
            ),
            (
                "report_anytime",
                format!(
                    "GET /report?scenario={scenario}&format=json&deadline_ms=50 HTTP/1.1\r\nHost: loadtest\r\n{connection}\r\n"
                )
                .into_bytes(),
            ),
            (
                "ask",
                format!(
                    "POST /ask HTTP/1.1\r\nHost: loadtest\r\nContent-Length: {}\r\n{connection}\r\n{ask_body}",
                    ask_body.len()
                )
                .into_bytes(),
            ),
        ];
        // Batch entity-resolution lookups: one request per affiliation query
        // form (acronym+city, alias, registry id+city), all aggregated into a
        // single `entity_resolve` latency bucket. These exercise the pruned
        // retrieval hot path against the registry corpus.
        for lookup in entity_registry::resolution_queries(EntityRegistryConfig::default(), 3) {
            let body = format!(
                r#"{{"scenario": "entity_registry", "query": "{}", "k": 10}}"#,
                lookup.query
            );
            requests.push((
                "entity_resolve",
                format!(
                    "POST /ask HTTP/1.1\r\nHost: loadtest\r\nContent-Length: {}\r\n{connection}\r\n{body}",
                    body.len()
                )
                .into_bytes(),
            ));
        }
        requests
    };

    // Pre-flight: one of each, so cold-start cost (index + pipeline build on
    // the first /report) never skews a concurrent percentile, and failures
    // surface before the fan-out.
    for (endpoint, raw) in &build_requests(true) {
        let sample = timed_request(addr, raw, endpoint)?;
        if sample.status != 200 {
            return Err(format!("{endpoint}: pre-flight answered {}", sample.status));
        }
    }

    eprintln!(
        "loadtest: {} clients x {} requests against {addr}{}",
        config.clients,
        config.requests_per_client,
        if in_process.is_some() {
            " (in-process server)"
        } else {
            ""
        }
    );

    let mut mode_sections: Vec<(String, JsonValue)> = Vec::new();
    for &mode in &config.modes {
        let requests = Arc::new(build_requests(mode == Mode::Close));
        let connections = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let requests = Arc::clone(&requests);
                let connections = Arc::clone(&connections);
                let count = config.requests_per_client;
                std::thread::spawn(move || -> Result<Vec<Sample>, String> {
                    match mode {
                        Mode::KeepAlive => {
                            // Stagger the rotation per client so endpoints
                            // overlap; one persistent connection per client.
                            keep_alive_client(addr, &requests, count, client, &connections)
                        }
                        Mode::Close => {
                            let mut samples = Vec::with_capacity(count);
                            for i in 0..count {
                                let (endpoint, raw) = &requests[(client + i) % requests.len()];
                                connections.fetch_add(1, Ordering::Relaxed);
                                samples.push(timed_request(addr, raw, endpoint)?);
                            }
                            Ok(samples)
                        }
                    }
                })
            })
            .collect();

        let mut samples: Vec<Sample> = Vec::new();
        for handle in handles {
            samples.extend(handle.join().map_err(|_| "client thread panicked")??);
        }
        let wall = started.elapsed();

        let failures = samples.iter().filter(|s| s.status != 200).count();
        if failures > 0 {
            return Err(format!(
                "{} mode: {failures} of {} requests failed",
                mode.label(),
                samples.len()
            ));
        }

        let mut per_endpoint: Vec<(&'static str, Vec<Duration>)> = Vec::new();
        let mut all: Vec<Duration> = Vec::new();
        for sample in &samples {
            all.push(sample.latency);
            match per_endpoint
                .iter_mut()
                .find(|(name, _)| *name == sample.endpoint)
            {
                Some((_, bucket)) => bucket.push(sample.latency),
                None => per_endpoint.push((sample.endpoint, vec![sample.latency])),
            }
        }
        let mut endpoints: Vec<(String, JsonValue)> = Vec::new();
        for (name, mut latencies) in per_endpoint {
            endpoints.push((name.to_string(), summarise(&mut latencies)));
        }

        let section = JsonValue::Object(vec![
            ("total".into(), summarise(&mut all)),
            ("endpoints".into(), JsonValue::Object(endpoints)),
            ("wall_seconds".into(), JsonValue::Number(wall.as_secs_f64())),
            (
                "throughput_rps".into(),
                JsonValue::Number(samples.len() as f64 / wall.as_secs_f64()),
            ),
            (
                "connections".into(),
                JsonValue::Number(connections.load(Ordering::Relaxed) as f64),
            ),
        ]);

        eprintln!(
            "  mode {} — {} requests over {} connections in {:.2}s",
            mode.label(),
            samples.len(),
            connections.load(Ordering::Relaxed),
            wall.as_secs_f64()
        );
        for (name, summary) in section
            .get("endpoints")
            .and_then(|v| match v {
                JsonValue::Object(members) => Some(members.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
        {
            eprintln!(
                "    {name:12} p50 {:8.0}us  p95 {:8.0}us  p99 {:8.0}us",
                summary
                    .get("p50_us")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
                summary
                    .get("p95_us")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
                summary
                    .get("p99_us")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
            );
        }

        mode_sections.push((mode.label().to_string(), section));
    }

    let batch = in_process
        .as_ref()
        .map(|server| server.batch_stats())
        .unwrap_or_default();

    let doc = JsonValue::Object(vec![
        ("schema".into(), JsonValue::String("rage-loadtest/2".into())),
        (
            "config".into(),
            JsonValue::Object(vec![
                ("clients".into(), JsonValue::Number(config.clients as f64)),
                (
                    "requests_per_client".into(),
                    JsonValue::Number(config.requests_per_client as f64),
                ),
                ("scenario".into(), JsonValue::String(scenario.clone())),
                (
                    "in_process_server".into(),
                    JsonValue::Bool(in_process.is_some()),
                ),
                (
                    "modes".into(),
                    JsonValue::Array(
                        config
                            .modes
                            .iter()
                            .map(|mode| JsonValue::String(mode.label().to_string()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("modes".into(), JsonValue::Object(mode_sections)),
        (
            "ask_batching".into(),
            JsonValue::Object(vec![
                ("requests".into(), JsonValue::Number(batch.requests as f64)),
                ("batches".into(), JsonValue::Number(batch.batches as f64)),
                (
                    "max_batch".into(),
                    JsonValue::Number(batch.max_batch as f64),
                ),
            ]),
        ),
    ]);

    let mut rendered = doc.render();
    rendered.push('\n');
    std::fs::write(&config.out, &rendered)
        .map_err(|err| format!("cannot write {}: {err}", config.out))?;
    eprintln!("loadtest: wrote {}", config.out);

    if let Some(server) = in_process {
        server.shutdown();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("--help" | "-h" | "help")
    ) {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadtest: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durations(micros: &[u64]) -> Vec<Duration> {
        micros.iter().map(|&u| Duration::from_micros(u)).collect()
    }

    #[test]
    fn percentile_n1_every_p_is_the_single_sample() {
        let sorted = durations(&[42]);
        for p in [1u64, 50, 95, 99, 100] {
            assert_eq!(percentile(&sorted, p), Duration::from_micros(42), "p={p}");
        }
    }

    #[test]
    fn percentile_n2_splits_at_the_median() {
        let sorted = durations(&[10, 20]);
        // rank = ceil(p·2/100): p ≤ 50 → rank 1, p > 50 → rank 2.
        assert_eq!(percentile(&sorted, 50), Duration::from_micros(10));
        assert_eq!(percentile(&sorted, 51), Duration::from_micros(20));
        assert_eq!(percentile(&sorted, 95), Duration::from_micros(20));
        assert_eq!(percentile(&sorted, 99), Duration::from_micros(20));
        assert_eq!(percentile(&sorted, 100), Duration::from_micros(20));
    }

    #[test]
    fn percentile_n10_nearest_rank_boundaries() {
        let sorted = durations(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        // Exact boundary: ceil(50·10/100) = 5 — the nearest-rank median of
        // an even-sized sample is the LOWER of the two middle values.
        assert_eq!(percentile(&sorted, 50), Duration::from_micros(5));
        // ceil(95·10/100) = ceil(9.5) = 10, ceil(99·10/100) = 10.
        assert_eq!(percentile(&sorted, 95), Duration::from_micros(10));
        assert_eq!(percentile(&sorted, 99), Duration::from_micros(10));
        assert_eq!(percentile(&sorted, 10), Duration::from_micros(1));
        assert_eq!(percentile(&sorted, 11), Duration::from_micros(2));
    }

    #[test]
    fn percentile_n99_and_n100_p99_boundary() {
        let n99: Vec<u64> = (1..=99).collect();
        let sorted = durations(&n99);
        // n = 99: ceil(99·99/100) = ceil(98.01) = 99 → still the max.
        assert_eq!(percentile(&sorted, 99), Duration::from_micros(99));
        assert!(percentile_saturated(99, 99));

        let n100: Vec<u64> = (1..=100).collect();
        let sorted = durations(&n100);
        // n = 100: ceil(99·100/100) = 99 → first rank where p99 detaches
        // from the max.
        assert_eq!(percentile(&sorted, 99), Duration::from_micros(99));
        assert_eq!(percentile(&sorted, 100), Duration::from_micros(100));
        assert!(!percentile_saturated(100, 99));
    }

    #[test]
    fn percentile_empty_and_clamps() {
        assert_eq!(percentile(&[], 99), Duration::ZERO);
        let sorted = durations(&[5, 6, 7]);
        // p = 0 clamps to 1 (rank 1); p > 100 clamps to the max.
        assert_eq!(percentile(&sorted, 0), Duration::from_micros(5));
        assert_eq!(percentile(&sorted, 1000), Duration::from_micros(7));
    }

    #[test]
    fn saturation_flags_track_sample_count() {
        // p95 detaches from the max at n = 20, p99 at n = 100.
        assert!(percentile_saturated(19, 95));
        assert!(!percentile_saturated(20, 95));
        assert!(percentile_saturated(99, 99));
        assert!(!percentile_saturated(100, 99));
        // Degenerate inputs never flag.
        assert!(!percentile_saturated(0, 99));
        assert!(!percentile_saturated(50, 100));
    }

    #[test]
    fn summarise_emits_saturation_fields() {
        let mut latencies = durations(&[10, 20, 30]);
        let summary = summarise(&mut latencies);
        assert_eq!(
            summary.get("requests").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            summary.get("p99_us").and_then(JsonValue::as_f64),
            Some(30.0)
        );
        assert_eq!(summary.get("p95_saturated"), Some(&JsonValue::Bool(true)));
        assert_eq!(summary.get("p99_saturated"), Some(&JsonValue::Bool(true)));

        let mut many = durations(&(1..=200).collect::<Vec<u64>>());
        let summary = summarise(&mut many);
        assert_eq!(
            summary.get("p99_us").and_then(JsonValue::as_f64),
            Some(198.0)
        );
        assert_eq!(summary.get("p95_saturated"), Some(&JsonValue::Bool(false)));
        assert_eq!(summary.get("p99_saturated"), Some(&JsonValue::Bool(false)));
    }
}
