//! `loadtest`: drive the `rage-server` HTTP service and record latency
//! percentiles.
//!
//! ```text
//! loadtest [--addr HOST:PORT] [--clients N] [--requests N]
//!          [--scenario NAME] [--out PATH]
//! ```
//!
//! Without `--addr` the bin boots an in-process [`rage_server::Server`] on an
//! ephemeral port (the CI path — no separate process to babysit); with
//! `--addr` it targets an already-running server. `--clients` concurrent
//! client threads each issue `--requests` requests in a fixed rotation of the
//! three serving endpoints (`GET /scenarios`, `GET /report?format=json`,
//! `POST /ask`), every request on a fresh connection exactly like the
//! server's one-request-per-connection contract expects. Per-endpoint
//! latencies are aggregated into p50/p95/p99 (nearest-rank) and written as
//! JSON to `--out` (default `SERVER_pr.json`).
//!
//! Caveat that also lives in the server crate docs: on the 1-CPU benching
//! container the worker pool only interleaves, so these percentiles
//! understate a multicore deployment.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rage_json::JsonValue;
use rage_report::Service;
use rage_server::{Server, ServerConfig};

fn usage() -> &'static str {
    "usage: loadtest [--addr HOST:PORT] [--clients N] [--requests N] \
     [--scenario NAME] [--out PATH]\n\
     \n\
     Drives the rage-server HTTP service (an in-process one unless --addr is\n\
     given) and writes p50/p95/p99 latencies per endpoint to --out\n\
     (default SERVER_pr.json).\n"
}

#[derive(Clone)]
struct LoadConfig {
    addr: Option<String>,
    clients: usize,
    requests_per_client: usize,
    scenario: String,
    out: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: None,
            clients: 4,
            requests_per_client: 25,
            scenario: "us_open".to_string(),
            out: "SERVER_pr.json".to_string(),
        }
    }
}

/// One timed request: endpoint label + latency.
struct Sample {
    endpoint: &'static str,
    latency: Duration,
    status: u16,
}

/// Issue one request on a fresh connection and read the full response.
fn timed_request(addr: SocketAddr, raw: &[u8], endpoint: &'static str) -> Result<Sample, String> {
    let start = Instant::now();
    let mut stream =
        TcpStream::connect(addr).map_err(|err| format!("{endpoint}: connect: {err}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|err| format!("{endpoint}: timeout: {err}"))?;
    stream
        .write_all(raw)
        .map_err(|err| format!("{endpoint}: write: {err}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|err| format!("{endpoint}: read: {err}"))?;
    let latency = start.elapsed();
    let status: u16 = std::str::from_utf8(&response)
        .ok()
        .and_then(|text| text.split_whitespace().nth(1))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("{endpoint}: unreadable response"))?;
    Ok(Sample {
        endpoint,
        latency,
        status,
    })
}

/// Nearest-rank percentile over sorted `samples`.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Percentile summary of one endpoint's samples, as a JSON object.
fn summarise(latencies: &mut [Duration]) -> JsonValue {
    latencies.sort();
    let total: Duration = latencies.iter().sum();
    let mean = if latencies.is_empty() {
        Duration::ZERO
    } else {
        total / latencies.len() as u32
    };
    JsonValue::Object(vec![
        ("requests".into(), JsonValue::Number(latencies.len() as f64)),
        (
            "p50_us".into(),
            JsonValue::Number(micros(percentile(latencies, 50.0))),
        ),
        (
            "p95_us".into(),
            JsonValue::Number(micros(percentile(latencies, 95.0))),
        ),
        (
            "p99_us".into(),
            JsonValue::Number(micros(percentile(latencies, 99.0))),
        ),
        ("mean_us".into(), JsonValue::Number(micros(mean))),
        (
            "min_us".into(),
            JsonValue::Number(micros(latencies.first().copied().unwrap_or(Duration::ZERO))),
        ),
        (
            "max_us".into(),
            JsonValue::Number(micros(latencies.last().copied().unwrap_or(Duration::ZERO))),
        ),
    ])
}

fn parse_args(args: &[String]) -> Result<LoadConfig, String> {
    let mut config = LoadConfig::default();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = Some(value(args, i, "--addr")?),
            "--clients" => {
                config.clients = value(args, i, "--clients")?
                    .parse()
                    .map_err(|_| "--clients needs a positive integer".to_string())?;
                if config.clients == 0 {
                    return Err("--clients needs a positive integer".to_string());
                }
            }
            "--requests" => {
                config.requests_per_client = value(args, i, "--requests")?
                    .parse()
                    .map_err(|_| "--requests needs a positive integer".to_string())?;
                if config.requests_per_client == 0 {
                    return Err("--requests needs a positive integer".to_string());
                }
            }
            "--scenario" => config.scenario = value(args, i, "--scenario")?,
            "--out" => config.out = value(args, i, "--out")?,
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
        i += 2;
    }
    Ok(config)
}

fn run(config: LoadConfig) -> Result<(), String> {
    // Target: an external server, or an in-process one on an ephemeral port.
    let (addr, in_process) = match &config.addr {
        Some(addr) => (
            addr.to_socket_addrs()
                .map_err(|err| format!("cannot resolve {addr}: {err}"))?
                .next()
                .ok_or_else(|| format!("cannot resolve {addr}"))?,
            None,
        ),
        None => {
            let server = Server::start(
                "127.0.0.1:0",
                Arc::new(Service::new()),
                ServerConfig {
                    threads: config.clients.max(2),
                    ..ServerConfig::default()
                },
            )
            .map_err(|err| format!("cannot start in-process server: {err}"))?;
            (server.addr(), Some(server))
        }
    };

    let scenario = &config.scenario;
    let ask_body = format!(
        r#"{{"scenario": "{scenario}", "query": "who won the championship final", "k": 3}}"#
    );
    let requests: Vec<(&'static str, Vec<u8>)> = vec![
        (
            "scenarios",
            b"GET /scenarios HTTP/1.1\r\nHost: loadtest\r\n\r\n".to_vec(),
        ),
        (
            "report_json",
            format!(
                "GET /report?scenario={scenario}&format=json HTTP/1.1\r\nHost: loadtest\r\n\r\n"
            )
            .into_bytes(),
        ),
        (
            "ask",
            format!(
                "POST /ask HTTP/1.1\r\nHost: loadtest\r\nContent-Length: {}\r\n\r\n{ask_body}",
                ask_body.len()
            )
            .into_bytes(),
        ),
    ];

    // Pre-flight: one of each, so cold-start cost (index + pipeline build on
    // the first /report) never skews a concurrent percentile, and failures
    // surface before the fan-out.
    for (endpoint, raw) in &requests {
        let sample = timed_request(addr, raw, endpoint)?;
        if sample.status != 200 {
            return Err(format!("{endpoint}: pre-flight answered {}", sample.status));
        }
    }

    eprintln!(
        "loadtest: {} clients x {} requests against {addr}{}",
        config.clients,
        config.requests_per_client,
        if in_process.is_some() {
            " (in-process server)"
        } else {
            ""
        }
    );

    let started = Instant::now();
    let requests = Arc::new(requests);
    let handles: Vec<_> = (0..config.clients)
        .map(|client| {
            let requests = Arc::clone(&requests);
            let count = config.requests_per_client;
            std::thread::spawn(move || -> Result<Vec<Sample>, String> {
                let mut samples = Vec::with_capacity(count);
                for i in 0..count {
                    // Stagger the rotation per client so endpoints overlap.
                    let (endpoint, raw) = &requests[(client + i) % requests.len()];
                    samples.push(timed_request(addr, raw, endpoint)?);
                }
                Ok(samples)
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    for handle in handles {
        samples.extend(handle.join().map_err(|_| "client thread panicked")??);
    }
    let wall = started.elapsed();

    let failures = samples.iter().filter(|s| s.status != 200).count();
    if failures > 0 {
        return Err(format!("{failures} of {} requests failed", samples.len()));
    }

    let mut per_endpoint: Vec<(&'static str, Vec<Duration>)> = Vec::new();
    let mut all: Vec<Duration> = Vec::new();
    for sample in &samples {
        all.push(sample.latency);
        match per_endpoint
            .iter_mut()
            .find(|(name, _)| *name == sample.endpoint)
        {
            Some((_, bucket)) => bucket.push(sample.latency),
            None => per_endpoint.push((sample.endpoint, vec![sample.latency])),
        }
    }

    let mut endpoints: Vec<(String, JsonValue)> = Vec::new();
    for (name, mut latencies) in per_endpoint {
        endpoints.push((name.to_string(), summarise(&mut latencies)));
    }
    let batch = in_process
        .as_ref()
        .map(|server| server.batch_stats())
        .unwrap_or_default();

    let doc = JsonValue::Object(vec![
        ("schema".into(), JsonValue::String("rage-loadtest/1".into())),
        (
            "config".into(),
            JsonValue::Object(vec![
                ("clients".into(), JsonValue::Number(config.clients as f64)),
                (
                    "requests_per_client".into(),
                    JsonValue::Number(config.requests_per_client as f64),
                ),
                ("scenario".into(), JsonValue::String(scenario.clone())),
                (
                    "in_process_server".into(),
                    JsonValue::Bool(in_process.is_some()),
                ),
            ]),
        ),
        ("total".into(), summarise(&mut all)),
        ("endpoints".into(), JsonValue::Object(endpoints)),
        ("wall_seconds".into(), JsonValue::Number(wall.as_secs_f64())),
        (
            "throughput_rps".into(),
            JsonValue::Number(samples.len() as f64 / wall.as_secs_f64()),
        ),
        (
            "ask_batching".into(),
            JsonValue::Object(vec![
                ("requests".into(), JsonValue::Number(batch.requests as f64)),
                ("batches".into(), JsonValue::Number(batch.batches as f64)),
                (
                    "max_batch".into(),
                    JsonValue::Number(batch.max_batch as f64),
                ),
            ]),
        ),
    ]);

    let mut rendered = doc.render();
    rendered.push('\n');
    std::fs::write(&config.out, &rendered)
        .map_err(|err| format!("cannot write {}: {err}", config.out))?;

    for (name, summary) in doc
        .get("endpoints")
        .and_then(|v| match v {
            JsonValue::Object(members) => Some(members.as_slice()),
            _ => None,
        })
        .unwrap_or(&[])
    {
        eprintln!(
            "  {name:12} p50 {:8.0}us  p95 {:8.0}us  p99 {:8.0}us",
            summary
                .get("p50_us")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            summary
                .get("p95_us")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            summary
                .get("p99_us")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
        );
    }
    eprintln!(
        "loadtest: {} requests in {:.2}s -> {}",
        samples.len(),
        wall.as_secs_f64(),
        config.out
    );

    if let Some(server) = in_process {
        server.shutdown();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("--help" | "-h" | "help")
    ) {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadtest: {message}");
            ExitCode::FAILURE
        }
    }
}
