//! # rage
//!
//! Umbrella crate for the RAGE explanation engine — one dependency that
//! re-exports the whole workspace: retrieval ([`retrieval`]), the simulated
//! LLM ([`llm`]), the explanation engine ([`explain`]), the combinatorics
//! substrate ([`assignment`]), the demonstration scenarios ([`datasets`]),
//! report rendering ([`report`]) and the HTTP explanation service
//! ([`server`]).
//!
//! ## Quick start
//!
//! ```
//! use rage::prelude::*;
//! use std::sync::Arc;
//!
//! // A tiny corpus and a retrieval-augmented pipeline over it.
//! let mut corpus = Corpus::new();
//! corpus.push(Document::new(
//!     "slams",
//!     "Grand slams",
//!     "Novak Djokovic holds the most grand slam titles.",
//! ));
//! corpus.push(Document::new("wins", "Match wins", "Roger Federer leads total match wins."));
//! let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
//! let pipeline = RagPipeline::new(searcher, Arc::new(SimLlm::new(SimLlmConfig::default())));
//!
//! // Ask, then explain the answer end to end.
//! let (response, evaluator) = pipeline
//!     .ask_and_explain("Who holds the most grand slam titles?", 2)
//!     .unwrap();
//! assert_eq!(response.answer(), "Novak Djokovic");
//!
//! let report = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();
//! assert_eq!(report.full_context_answer, "Novak Djokovic");
//! assert!(report.summary().contains("question:"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Combinatorics substrate (combinations, permutations, assignment, k-best).
pub use rage_assignment as assignment;
/// The explanation engine (pipeline, counterfactuals, insights, optimal orders).
pub use rage_core as explain;
/// Demonstration scenarios and synthetic corpus generators.
pub use rage_datasets as datasets;
/// The deterministic simulated LLM substrate.
pub use rage_llm as llm;
/// Report rendering (markdown, versioned JSON, HTML) and diffing.
pub use rage_report as report;
/// The BM25 retrieval substrate.
pub use rage_retrieval as retrieval;
/// The HTTP explanation service (`rage-server`).
pub use rage_server as server;

/// The commonly-used types, importable in one line.
pub mod prelude {
    pub use rage_core::counterfactual::{
        find_combination_counterfactual, find_permutation_counterfactual, CounterfactualConfig,
        SearchDirection,
    };
    pub use rage_core::explanation::ReportConfig;
    pub use rage_core::insights::Insights;
    pub use rage_core::optimal::{
        best_orders, naive_orders, ranked_orders_with_budget, worst_orders, OptimalConfig,
    };
    pub use rage_core::scoring::ScoringMethod;
    pub use rage_core::{
        CacheStats, Completeness, Context, Deadline, Evaluate, Evaluator, ParallelEvaluator,
        Perturbation, RagPipeline, RagResponse, RageError, RageReport, SearchBudget,
    };
    pub use rage_datasets::{Scenario, ScenarioEntry, ScenarioParams, ScenarioRegistry};
    pub use rage_llm::cache::PrefixCache;
    pub use rage_llm::model::{SimLlm, SimLlmConfig};
    pub use rage_llm::position_bias::PositionBiasProfile;
    pub use rage_llm::{Generation, LanguageModel, LlmInput, SourceText};
    pub use rage_report::{diff, from_json, render_html, render_markdown, to_json, ReportDiff};
    pub use rage_retrieval::{
        Corpus, Document, IndexBuilder, Retriever, Searcher, ShardedIndexBuilder, ShardedSearcher,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn scenario_runs_through_the_umbrella_api() {
        let scenario = rage_datasets::us_open::scenario();
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
        let pipeline = RagPipeline::new(searcher, Arc::new(llm));
        let response = pipeline
            .ask(&scenario.question, scenario.retrieval_k)
            .unwrap();
        assert_eq!(response.answer(), scenario.expected_full_context_answer);
    }
}
