//! Golden-snapshot tests: pin the markdown and JSON renderings of every registered
//! demonstration scenario byte-for-byte.
//!
//! Every report here is fully deterministic (seeded retrieval, simulated LLM
//! and insight sampling), so any diff in these snapshots is a real behaviour
//! change — either an intentional rendering/schema change or an accidental
//! regression in the engine.
//!
//! To update the snapshots after an intentional change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p rage-report --test golden
//! ```
//!
//! then review the diff under `crates/report/tests/snapshots/` and commit it
//! alongside the change that caused it.

use std::fs;
use std::path::PathBuf;

use rage_core::explanation::ReportConfig;
use rage_report::scenarios::{report_for, scenario_by_name, scenario_names};
use rage_report::{render_markdown, to_json};

fn snapshot_path(name: &str, ext: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.{ext}"))
}

fn check_snapshot(name: &str, ext: &str, actual: &str) {
    let path = snapshot_path(name, ext);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "cannot read snapshot {path:?} ({err}); \
             run UPDATE_SNAPSHOTS=1 cargo test -p rage-report --test golden"
        )
    });
    assert_eq!(
        actual, expected,
        "{name}.{ext} drifted from its golden snapshot; if the change is \
         intentional, regenerate with UPDATE_SNAPSHOTS=1 and commit the diff"
    );
}

fn check_scenario(name: &str) {
    let scenario = scenario_by_name(name).expect("built-in scenario name");
    let report = report_for(&scenario, &ReportConfig::default()).expect("explanation succeeds");
    check_snapshot(name, "md", &render_markdown(&report));
    check_snapshot(name, "json", &(to_json(&report).render() + "\n"));
}

#[test]
fn us_open_snapshots_are_stable() {
    check_scenario("us_open");
}

#[test]
fn big_three_snapshots_are_stable() {
    check_scenario("big_three");
}

#[test]
fn timeline_snapshots_are_stable() {
    check_scenario("timeline");
}

#[test]
fn synthetic_snapshots_are_stable() {
    check_scenario("synthetic");
}

#[test]
fn large_corpus_snapshots_are_stable() {
    check_scenario("large_corpus");
}

#[test]
fn multi_hop_snapshots_are_stable() {
    check_scenario("multi_hop");
}

#[test]
fn adversarial_snapshots_are_stable() {
    check_scenario("adversarial");
}

#[test]
fn live_updates_snapshots_are_stable() {
    // Pins the *seed* corpus rendering; the mutation script is exercised by
    // the service and endpoint tests, not the goldens (reports over mutated
    // corpora are stamped with provenance and compared against fresh oracles
    // there).
    check_scenario("live_updates");
}

#[test]
fn entity_registry_snapshots_are_stable() {
    // Pins the default-size (4096 record) registry; the benchmark builds the
    // same generator at 100k for the pruning speedup measurement.
    check_scenario("entity_registry");
}

#[test]
fn snapshot_list_matches_cli_scenarios() {
    // Every scenario the registry knows has a pinned pair of snapshots (guards
    // against registering a scenario without extending the golden coverage).
    for name in scenario_names() {
        for ext in ["md", "json"] {
            assert!(
                std::env::var_os("UPDATE_SNAPSHOTS").is_some() || snapshot_path(name, ext).exists(),
                "missing snapshot {name}.{ext}"
            );
        }
    }
}
