//! Schema v1 → v2 compatibility: the committed v1 fixture (the pre-bump
//! `us_open` golden snapshot, byte-for-byte) must keep decoding forever —
//! with `Exact` completeness everywhere, no intervals, and a reconstructed
//! permutation budget — and must diff cleanly against the current v2 golden
//! of the same scenario.

use rage_core::Completeness;
use rage_json::JsonValue;
use rage_report::{diff, from_json, to_json, MIN_SCHEMA_VERSION, SCHEMA_VERSION};

const V1_FIXTURE: &str = include_str!("fixtures/us_open.v1.json");
const V2_GOLDEN: &str = include_str!("snapshots/us_open.json");

fn decode(raw: &str) -> rage_core::RageReport {
    from_json(&JsonValue::parse(raw).expect("fixture parses")).expect("fixture decodes")
}

#[test]
fn the_version_range_is_what_the_fixture_pins() {
    assert_eq!(MIN_SCHEMA_VERSION, 1);
    assert_eq!(SCHEMA_VERSION, 2);
    let value = JsonValue::parse(V1_FIXTURE).unwrap();
    assert_eq!(value.get("schema_version"), Some(&JsonValue::Number(1.0)));
}

#[test]
fn v1_documents_decode_with_exact_completeness_everywhere() {
    let report = decode(V1_FIXTURE);
    assert!(report.all_sections_exact());
    assert_eq!(report.top_down.completeness, Completeness::Exact);
    assert_eq!(report.bottom_up.completeness, Completeness::Exact);
    assert_eq!(report.permutation.completeness, Completeness::Exact);
    assert_eq!(report.placements_completeness, Completeness::Exact);
    assert_eq!(report.insights.completeness, Completeness::Exact);
    // v1 never carried confidence intervals.
    for entry in &report.insights.distribution.entries {
        assert!(entry.interval.is_none());
    }
    // The fixture's permutation search finished under budget, so the budget
    // itself is unrecoverable from v1 — the decoder assumes the engine
    // default.
    assert!(!report.permutation.exhausted_budget);
    assert_eq!(
        report.permutation_budget,
        rage_core::counterfactual::DEFAULT_PERMUTATION_BUDGET
    );
    // The substantive content survives the version gap.
    assert_eq!(report.full_context_answer, "Coco Gauff");
    assert_eq!(report.citations(), vec!["us-open-2023"]);
}

#[test]
fn v1_decodes_re_encode_as_v2() {
    let report = decode(V1_FIXTURE);
    let value = to_json(&report);
    assert_eq!(value.get("schema_version"), Some(&JsonValue::Number(2.0)));
    // An exact report spells no completeness block even after the upgrade.
    assert!(value.get("completeness").is_none());
    // And the upgraded document round-trips exactly from here on.
    assert_eq!(from_json(&value).unwrap(), report);
}

#[test]
fn diff_spans_the_version_gap() {
    let v1 = decode(V1_FIXTURE);
    let v2 = decode(V2_GOLDEN);
    let d = diff(&v1, &v2);
    // Same scenario, same engine: everything the diff inspects agrees. (The
    // v1-reconstructed permutation budget is not a diffed dimension.)
    assert!(d.is_empty(), "{}", d.render_markdown());
    assert!(d.completeness_changed.is_none());
}

#[test]
fn unknown_versions_keep_failing_with_a_dotted_path() {
    for version in ["0", "3", "99"] {
        let raw = V1_FIXTURE.replacen(
            "\"schema_version\":1",
            &format!("\"schema_version\":{version}"),
            1,
        );
        let err = from_json(&JsonValue::parse(&raw).unwrap()).unwrap_err();
        assert_eq!(err.path, "$.schema_version");
        assert!(err.message.contains(version), "{}", err.message);
    }
}
