//! Sharded-pipeline equivalence at the report level.
//!
//! The retrieval-layer suite (`crates/retrieval/tests/sharding.rs`) proves sharded
//! rankings are bit-identical to single-index ones; this suite proves the property
//! survives the whole explanation engine: a [`RageReport`] built through an N-way
//! sharded pipeline equals the single-index report — as a value, and through the
//! structured `from_json(to_json(..))` round trip — for every tested shard count.
//! Sharding is a deployment decision, never a behaviour change.

use rage_core::explanation::ReportConfig;
use rage_datasets::ScenarioParams;
use rage_report::scenarios::{registry, report_for, report_for_sharded, scenario_by_name};
use rage_report::{from_json, to_json};

fn fast_config() -> ReportConfig {
    ReportConfig {
        insight_samples: 4,
        permutation_budget: Some(16),
        ..ReportConfig::default()
    }
}

fn assert_sharded_equals_single(scenario: &rage_datasets::Scenario, shard_counts: &[usize]) {
    let config = fast_config();
    let single = report_for(scenario, &config).expect("single-index explanation succeeds");
    let single_json = to_json(&single);
    for &shards in shard_counts {
        let sharded =
            report_for_sharded(scenario, &config, shards).expect("sharded explanation succeeds");
        assert_eq!(
            single, sharded,
            "{}: report through {shards} shards drifted",
            scenario.name
        );
        // from_json(to_json(..))-level equality: the structured documents are equal
        // and both decode back to the same report.
        let sharded_json = to_json(&sharded);
        assert_eq!(
            single_json, sharded_json,
            "{}: structured report through {shards} shards drifted",
            scenario.name
        );
        let decoded = from_json(&sharded_json).expect("sharded report decodes");
        assert_eq!(decoded, single, "{}: decoded report drifted", scenario.name);
    }
}

#[test]
fn us_open_report_is_shard_count_invariant() {
    let scenario = scenario_by_name("us_open").unwrap();
    assert_sharded_equals_single(&scenario, &[1, 2, 3, 7, 16]);
}

#[test]
fn adversarial_report_is_shard_count_invariant() {
    // Twin documents tie exactly under BM25, so this scenario would expose any
    // shard-merge tie-break leak directly in the report.
    let scenario = scenario_by_name("adversarial").unwrap();
    assert_sharded_equals_single(&scenario, &[1, 2, 3, 7, 16]);
}

#[test]
fn large_corpus_report_is_shard_count_invariant() {
    // A scaled-down large corpus (the needles-in-haystack structure is preserved)
    // keeps the test quick while still spreading signal documents across shards.
    let scenario = registry()
        .build_with("large_corpus", &ScenarioParams::default().with_size(384))
        .unwrap();
    assert_sharded_equals_single(&scenario, &[2, 7]);
}
