//! The versioned structured report format: [`to_json`] / [`from_json`].
//!
//! See the crate docs for the full schema. The mapping is lossless: every
//! field of [`RageReport`] appears in the JSON document and
//! `from_json(to_json(report)) == report` exactly (floats survive because the
//! renderer uses Rust's shortest round-trippable float formatting).

use std::fmt;

use rage_core::counterfactual::{
    CombinationCounterfactual, CombinationOutcome, PermutationCounterfactual, PermutationOutcome,
    SearchStats, DEFAULT_PERMUTATION_BUDGET,
};
use rage_core::insights::{
    AnswerDistribution, AnswerShare, FrequencyCell, FrequencyRow, FrequencyTable, Insights,
    PresenceRule, ShareInterval,
};
use rage_core::optimal::OptimalPermutation;
use rage_core::{Completeness, Context, ContextSource, CorpusProvenance, RageReport};
use rage_json::JsonValue;

/// The schema version emitted by [`to_json`].
///
/// [`from_json`] accepts both this version and the previous one
/// ([`MIN_SCHEMA_VERSION`]): v1 documents decode with
/// [`Completeness`]::`Exact`-or-derived markers and the assumed default
/// permutation budget (see the crate docs).
pub const SCHEMA_VERSION: u64 = 2;

/// The oldest schema version [`from_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// The `"kind"` discriminator emitted by [`to_json`].
const KIND: &str = "rage-report";

/// A structural error while decoding a report from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportJsonError {
    /// Dotted path to the offending member (e.g. `insights.rules[2].support`).
    pub path: String,
    /// What was wrong there.
    pub message: String,
}

impl ReportJsonError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ReportJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for ReportJsonError {}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(value: &str) -> JsonValue {
    JsonValue::String(value.to_string())
}

fn num(value: f64) -> JsonValue {
    JsonValue::Number(value)
}

fn int(value: usize) -> JsonValue {
    JsonValue::Number(value as f64)
}

fn indices(values: &[usize]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| int(v)).collect())
}

fn stats_to_json(stats: &SearchStats) -> JsonValue {
    obj(vec![
        ("candidates", int(stats.candidates)),
        ("llm_calls", int(stats.llm_calls)),
    ])
}

/// The completeness marker a v1 reader would infer for a combination or
/// permutation outcome: `Exact` unless the budget flag is set, in which case a
/// plain budget truncation at the evaluated count.
fn derived_completeness(exhausted_budget: bool, evaluated: usize) -> Completeness {
    if exhausted_budget {
        Completeness::BudgetTruncated {
            evaluated,
            pruned: 0,
        }
    } else {
        Completeness::Exact
    }
}

/// Whether every completeness marker in the report equals what a v1 reader
/// derives — true for every exhaustive (non-anytime, non-pruned) report, so
/// those documents carry no `completeness` member at all.
fn completeness_is_derivable(report: &RageReport) -> bool {
    report.top_down.completeness
        == derived_completeness(
            report.top_down.exhausted_budget,
            report.top_down.stats.candidates,
        )
        && report.bottom_up.completeness
            == derived_completeness(
                report.bottom_up.exhausted_budget,
                report.bottom_up.stats.candidates,
            )
        && report.permutation.completeness
            == derived_completeness(
                report.permutation.exhausted_budget,
                report.permutation.stats.candidates,
            )
        && report.placements_completeness == Completeness::Exact
        && report.insights.completeness == Completeness::Exact
}

fn completeness_to_json(marker: &Completeness) -> JsonValue {
    match marker {
        Completeness::Exact => obj(vec![("kind", s("exact"))]),
        Completeness::BudgetTruncated { evaluated, pruned } => obj(vec![
            ("kind", s("budget_truncated")),
            ("evaluated", int(*evaluated)),
            ("pruned", int(*pruned)),
        ]),
        Completeness::DeadlineTruncated { elapsed_ms } => obj(vec![
            ("kind", s("deadline_truncated")),
            ("elapsed_ms", int(*elapsed_ms as usize)),
        ]),
    }
}

fn combination_to_json(outcome: &CombinationOutcome) -> JsonValue {
    let counterfactual = match &outcome.counterfactual {
        Some(cf) => obj(vec![
            ("removed", indices(&cf.removed)),
            ("kept", indices(&cf.kept)),
            ("baseline_answer", s(&cf.baseline_answer)),
            ("answer", s(&cf.answer)),
        ]),
        None => JsonValue::Null,
    };
    obj(vec![
        ("counterfactual", counterfactual),
        (
            "exhausted_budget",
            JsonValue::Bool(outcome.exhausted_budget),
        ),
        ("stats", stats_to_json(&outcome.stats)),
    ])
}

fn permutation_to_json(outcome: &PermutationOutcome) -> JsonValue {
    let counterfactual = match &outcome.counterfactual {
        Some(cf) => obj(vec![
            ("order", indices(&cf.order)),
            ("tau", num(cf.tau)),
            ("baseline_answer", s(&cf.baseline_answer)),
            ("answer", s(&cf.answer)),
        ]),
        None => JsonValue::Null,
    };
    obj(vec![
        ("counterfactual", counterfactual),
        (
            "exhausted_budget",
            JsonValue::Bool(outcome.exhausted_budget),
        ),
        ("stats", stats_to_json(&outcome.stats)),
    ])
}

fn orders_to_json(orders: &[OptimalPermutation]) -> JsonValue {
    JsonValue::Array(
        orders
            .iter()
            .map(|op| {
                obj(vec![
                    ("order", indices(&op.order)),
                    ("objective", num(op.objective)),
                    ("answer", s(&op.answer)),
                    ("tau", num(op.tau)),
                ])
            })
            .collect(),
    )
}

fn insights_to_json(insights: &Insights) -> JsonValue {
    let entries = JsonValue::Array(
        insights
            .distribution
            .entries
            .iter()
            .map(|e| {
                let mut members = vec![
                    ("answer", s(&e.answer)),
                    ("normalized", s(&e.normalized)),
                    ("count", int(e.count)),
                    ("share", num(e.share)),
                ];
                // Optional: only truncated samples carry share intervals, so
                // exhaustive documents keep the v1 entry shape byte for byte.
                if let Some(interval) = &e.interval {
                    members.push((
                        "interval",
                        obj(vec![
                            ("lower", num(interval.lower)),
                            ("upper", num(interval.upper)),
                        ]),
                    ));
                }
                obj(members)
            })
            .collect(),
    );
    let rows = JsonValue::Array(
        insights
            .table
            .rows
            .iter()
            .map(|row| {
                let cells = JsonValue::Array(
                    row.cells
                        .iter()
                        .map(|cell| {
                            obj(vec![
                                ("answer", s(&cell.answer)),
                                ("present", int(cell.present)),
                                ("out_of", int(cell.out_of)),
                                (
                                    "mean_position",
                                    cell.mean_position.map_or(JsonValue::Null, num),
                                ),
                            ])
                        })
                        .collect(),
                );
                obj(vec![
                    ("source", int(row.source)),
                    ("doc_id", s(&row.doc_id)),
                    ("present_in", int(row.present_in)),
                    ("cells", cells),
                ])
            })
            .collect(),
    );
    let rules = JsonValue::Array(
        insights
            .rules
            .iter()
            .map(|rule| {
                obj(vec![
                    ("source", int(rule.source)),
                    ("doc_id", s(&rule.doc_id)),
                    ("present", JsonValue::Bool(rule.present)),
                    ("answer", s(&rule.answer)),
                    ("support", num(rule.support)),
                    ("confidence", num(rule.confidence)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("num_samples", int(insights.num_samples)),
        (
            "distribution",
            obj(vec![
                ("total", int(insights.distribution.total)),
                ("entries", entries),
            ]),
        ),
        ("table", obj(vec![("rows", rows)])),
        ("rules", rules),
        ("stats", stats_to_json(&insights.stats)),
    ])
}

fn context_to_json(context: &Context) -> JsonValue {
    let sources = JsonValue::Array(
        context
            .sources
            .iter()
            .map(|source| {
                obj(vec![
                    ("doc_id", s(&source.doc_id)),
                    ("title", s(&source.title)),
                    ("text", s(&source.text)),
                    ("rank", int(source.rank)),
                    ("retrieval_score", num(source.retrieval_score)),
                ])
            })
            .collect(),
    );
    obj(vec![("query", s(&context.query)), ("sources", sources)])
}

/// Serialize a report into the schema-versioned JSON document.
///
/// The result renders to valid JSON via [`JsonValue::render`] and decodes
/// back to an equal report via [`from_json`].
pub fn to_json(report: &RageReport) -> JsonValue {
    let mut members = vec![
        ("schema_version", int(SCHEMA_VERSION as usize)),
        ("kind", s(KIND)),
        ("question", s(&report.question)),
        (
            "answers",
            obj(vec![
                ("full_context", s(&report.full_context_answer)),
                ("empty_context", s(&report.empty_context_answer)),
            ]),
        ),
        ("context", context_to_json(&report.context)),
        (
            "source_scores",
            JsonValue::Array(report.source_scores.iter().map(|&v| num(v)).collect()),
        ),
        (
            "counterfactuals",
            obj(vec![
                ("top_down", combination_to_json(&report.top_down)),
                ("bottom_up", combination_to_json(&report.bottom_up)),
            ]),
        ),
        ("permutation", permutation_to_json(&report.permutation)),
        ("best_orders", orders_to_json(&report.best_orders)),
        ("worst_orders", orders_to_json(&report.worst_orders)),
        ("insights", insights_to_json(&report.insights)),
        (
            "cost",
            obj(vec![
                ("evaluations", int(report.evaluations)),
                ("llm_calls", int(report.llm_calls)),
                ("permutation_budget", int(report.permutation_budget)),
            ]),
        ),
    ];
    // Optional member: exhaustive reports have markers a v1 reader can derive
    // (everything `Exact` or a plain budget stop), so only anytime or pruned
    // reports carry the explicit per-section completeness block.
    if !completeness_is_derivable(report) {
        members.push((
            "completeness",
            obj(vec![
                (
                    "top_down",
                    completeness_to_json(&report.top_down.completeness),
                ),
                (
                    "bottom_up",
                    completeness_to_json(&report.bottom_up.completeness),
                ),
                (
                    "permutation",
                    completeness_to_json(&report.permutation.completeness),
                ),
                (
                    "placements",
                    completeness_to_json(&report.placements_completeness),
                ),
                (
                    "insights",
                    completeness_to_json(&report.insights.completeness),
                ),
            ]),
        ));
    }
    // Optional member: only reports generated against a versioned corpus carry
    // provenance, so documents from the library path are byte-identical to
    // pre-provenance builds (adding members is backwards-compatible within a
    // schema version).
    if let Some(corpus) = &report.corpus {
        members.push((
            "corpus",
            obj(vec![
                ("version", int(corpus.version as usize)),
                // The fingerprint is a full 64-bit hash; JSON numbers are f64
                // and lose precision past 2^53, so it travels as fixed-width hex.
                ("fingerprint", s(&format!("{:016x}", corpus.fingerprint))),
                ("num_docs", int(corpus.num_docs)),
            ]),
        ));
    }
    obj(members)
}

// ---- decoding ----------------------------------------------------------

fn get<'a>(value: &'a JsonValue, path: &str, key: &str) -> Result<&'a JsonValue, ReportJsonError> {
    value
        .get(key)
        .ok_or_else(|| ReportJsonError::new(format!("{path}.{key}"), "missing member"))
}

fn get_str(value: &JsonValue, path: &str, key: &str) -> Result<String, ReportJsonError> {
    get(value, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ReportJsonError::new(format!("{path}.{key}"), "expected a string"))
}

fn get_f64(value: &JsonValue, path: &str, key: &str) -> Result<f64, ReportJsonError> {
    get(value, path, key)?
        .as_f64()
        .ok_or_else(|| ReportJsonError::new(format!("{path}.{key}"), "expected a number"))
}

fn get_usize(value: &JsonValue, path: &str, key: &str) -> Result<usize, ReportJsonError> {
    get(value, path, key)?.as_usize().ok_or_else(|| {
        ReportJsonError::new(format!("{path}.{key}"), "expected a non-negative integer")
    })
}

fn get_bool(value: &JsonValue, path: &str, key: &str) -> Result<bool, ReportJsonError> {
    get(value, path, key)?
        .as_bool()
        .ok_or_else(|| ReportJsonError::new(format!("{path}.{key}"), "expected a boolean"))
}

fn get_array<'a>(
    value: &'a JsonValue,
    path: &str,
    key: &str,
) -> Result<&'a [JsonValue], ReportJsonError> {
    get(value, path, key)?
        .as_array()
        .ok_or_else(|| ReportJsonError::new(format!("{path}.{key}"), "expected an array"))
}

fn get_indices(value: &JsonValue, path: &str, key: &str) -> Result<Vec<usize>, ReportJsonError> {
    get_array(value, path, key)?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_usize().ok_or_else(|| {
                ReportJsonError::new(
                    format!("{path}.{key}[{i}]"),
                    "expected a non-negative integer",
                )
            })
        })
        .collect()
}

fn stats_from_json(value: &JsonValue, path: &str) -> Result<SearchStats, ReportJsonError> {
    Ok(SearchStats {
        candidates: get_usize(value, path, "candidates")?,
        llm_calls: get_usize(value, path, "llm_calls")?,
    })
}

fn combination_from_json(
    value: &JsonValue,
    path: &str,
) -> Result<CombinationOutcome, ReportJsonError> {
    let cf_value = get(value, path, "counterfactual")?;
    let counterfactual = if cf_value.is_null() {
        None
    } else {
        let cf_path = format!("{path}.counterfactual");
        Some(CombinationCounterfactual {
            removed: get_indices(cf_value, &cf_path, "removed")?,
            kept: get_indices(cf_value, &cf_path, "kept")?,
            baseline_answer: get_str(cf_value, &cf_path, "baseline_answer")?,
            answer: get_str(cf_value, &cf_path, "answer")?,
        })
    };
    let exhausted_budget = get_bool(value, path, "exhausted_budget")?;
    let stats = stats_from_json(get(value, path, "stats")?, &format!("{path}.stats"))?;
    Ok(CombinationOutcome {
        counterfactual,
        exhausted_budget,
        // Derived marker; overridden afterwards when the document carries an
        // explicit top-level `completeness` block.
        completeness: derived_completeness(exhausted_budget, stats.candidates),
        stats,
    })
}

fn permutation_from_json(
    value: &JsonValue,
    path: &str,
) -> Result<PermutationOutcome, ReportJsonError> {
    let cf_value = get(value, path, "counterfactual")?;
    let counterfactual = if cf_value.is_null() {
        None
    } else {
        let cf_path = format!("{path}.counterfactual");
        Some(PermutationCounterfactual {
            order: get_indices(cf_value, &cf_path, "order")?,
            tau: get_f64(cf_value, &cf_path, "tau")?,
            baseline_answer: get_str(cf_value, &cf_path, "baseline_answer")?,
            answer: get_str(cf_value, &cf_path, "answer")?,
        })
    };
    let exhausted_budget = get_bool(value, path, "exhausted_budget")?;
    let stats = stats_from_json(get(value, path, "stats")?, &format!("{path}.stats"))?;
    Ok(PermutationOutcome {
        counterfactual,
        exhausted_budget,
        completeness: derived_completeness(exhausted_budget, stats.candidates),
        stats,
    })
}

fn orders_from_json(
    value: &JsonValue,
    path: &str,
    key: &str,
) -> Result<Vec<OptimalPermutation>, ReportJsonError> {
    get_array(value, path, key)?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let item_path = format!("{path}.{key}[{i}]");
            Ok(OptimalPermutation {
                order: get_indices(item, &item_path, "order")?,
                objective: get_f64(item, &item_path, "objective")?,
                answer: get_str(item, &item_path, "answer")?,
                tau: get_f64(item, &item_path, "tau")?,
            })
        })
        .collect()
}

fn insights_from_json(value: &JsonValue, path: &str) -> Result<Insights, ReportJsonError> {
    let distribution_value = get(value, path, "distribution")?;
    let dist_path = format!("{path}.distribution");
    let entries = get_array(distribution_value, &dist_path, "entries")?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let item_path = format!("{dist_path}.entries[{i}]");
            let interval = match item.get("interval") {
                None => None,
                Some(v) if v.is_null() => None,
                Some(v) => {
                    let interval_path = format!("{item_path}.interval");
                    Some(ShareInterval {
                        lower: get_f64(v, &interval_path, "lower")?,
                        upper: get_f64(v, &interval_path, "upper")?,
                    })
                }
            };
            Ok(AnswerShare {
                answer: get_str(item, &item_path, "answer")?,
                normalized: get_str(item, &item_path, "normalized")?,
                count: get_usize(item, &item_path, "count")?,
                share: get_f64(item, &item_path, "share")?,
                interval,
            })
        })
        .collect::<Result<Vec<_>, ReportJsonError>>()?;
    let distribution = AnswerDistribution {
        total: get_usize(distribution_value, &dist_path, "total")?,
        entries,
    };

    let table_value = get(value, path, "table")?;
    let table_path = format!("{path}.table");
    let rows = get_array(table_value, &table_path, "rows")?
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let row_path = format!("{table_path}.rows[{i}]");
            let cells = get_array(row, &row_path, "cells")?
                .iter()
                .enumerate()
                .map(|(j, cell)| {
                    let cell_path = format!("{row_path}.cells[{j}]");
                    let mean_position = get(cell, &cell_path, "mean_position")?;
                    let mean_position = if mean_position.is_null() {
                        None
                    } else {
                        Some(mean_position.as_f64().ok_or_else(|| {
                            ReportJsonError::new(
                                format!("{cell_path}.mean_position"),
                                "expected a number or null",
                            )
                        })?)
                    };
                    Ok(FrequencyCell {
                        answer: get_str(cell, &cell_path, "answer")?,
                        present: get_usize(cell, &cell_path, "present")?,
                        out_of: get_usize(cell, &cell_path, "out_of")?,
                        mean_position,
                    })
                })
                .collect::<Result<Vec<_>, ReportJsonError>>()?;
            Ok(FrequencyRow {
                source: get_usize(row, &row_path, "source")?,
                doc_id: get_str(row, &row_path, "doc_id")?,
                present_in: get_usize(row, &row_path, "present_in")?,
                cells,
            })
        })
        .collect::<Result<Vec<_>, ReportJsonError>>()?;

    let rules = get_array(value, path, "rules")?
        .iter()
        .enumerate()
        .map(|(i, rule)| {
            let rule_path = format!("{path}.rules[{i}]");
            Ok(PresenceRule {
                source: get_usize(rule, &rule_path, "source")?,
                doc_id: get_str(rule, &rule_path, "doc_id")?,
                present: get_bool(rule, &rule_path, "present")?,
                answer: get_str(rule, &rule_path, "answer")?,
                support: get_f64(rule, &rule_path, "support")?,
                confidence: get_f64(rule, &rule_path, "confidence")?,
            })
        })
        .collect::<Result<Vec<_>, ReportJsonError>>()?;

    Ok(Insights {
        num_samples: get_usize(value, path, "num_samples")?,
        // Exact unless the document's top-level `completeness` block says
        // otherwise (applied by the caller).
        completeness: Completeness::Exact,
        distribution,
        table: FrequencyTable { rows },
        rules,
        stats: stats_from_json(get(value, path, "stats")?, &format!("{path}.stats"))?,
    })
}

fn completeness_from_json(value: &JsonValue, path: &str) -> Result<Completeness, ReportJsonError> {
    let kind = get_str(value, path, "kind")?;
    match kind.as_str() {
        "exact" => Ok(Completeness::Exact),
        "budget_truncated" => Ok(Completeness::BudgetTruncated {
            evaluated: get_usize(value, path, "evaluated")?,
            pruned: get_usize(value, path, "pruned")?,
        }),
        "deadline_truncated" => Ok(Completeness::DeadlineTruncated {
            elapsed_ms: get_usize(value, path, "elapsed_ms")? as u64,
        }),
        other => Err(ReportJsonError::new(
            format!("{path}.kind"),
            format!(
                "expected \"exact\", \"budget_truncated\" or \"deadline_truncated\", found {other:?}"
            ),
        )),
    }
}

fn context_from_json(value: &JsonValue, path: &str) -> Result<Context, ReportJsonError> {
    let sources = get_array(value, path, "sources")?
        .iter()
        .enumerate()
        .map(|(i, source)| {
            let source_path = format!("{path}.sources[{i}]");
            Ok(ContextSource {
                doc_id: get_str(source, &source_path, "doc_id")?,
                title: get_str(source, &source_path, "title")?,
                text: get_str(source, &source_path, "text")?,
                rank: get_usize(source, &source_path, "rank")?,
                retrieval_score: get_f64(source, &source_path, "retrieval_score")?,
            })
        })
        .collect::<Result<Vec<_>, ReportJsonError>>()?;
    Ok(Context {
        query: get_str(value, path, "query")?,
        sources,
    })
}

/// Decode a report from its [`to_json`] representation.
///
/// Accepts schema versions [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`]: a v1
/// document (which predates completeness markers, share intervals and the
/// recorded permutation budget) decodes with markers derived from its budget
/// flags — `Exact` everywhere a search finished — and the permutation budget
/// reconstructed as the evaluated count when the budget was exhausted, else
/// the engine default. Rejects documents with a missing or unknown
/// `schema_version` (or a wrong `kind`), and reports the dotted path of the
/// first structural mismatch.
pub fn from_json(value: &JsonValue) -> Result<RageReport, ReportJsonError> {
    let version = get_usize(value, "$", "schema_version")?;
    if !(MIN_SCHEMA_VERSION as usize..=SCHEMA_VERSION as usize).contains(&version) {
        return Err(ReportJsonError::new(
            "$.schema_version",
            format!(
                "unsupported schema version {version} (this build reads {MIN_SCHEMA_VERSION} through {SCHEMA_VERSION})"
            ),
        ));
    }
    let kind = get_str(value, "$", "kind")?;
    if kind != KIND {
        return Err(ReportJsonError::new(
            "$.kind",
            format!("expected {KIND:?}, found {kind:?}"),
        ));
    }

    let answers = get(value, "$", "answers")?;
    let counterfactuals = get(value, "$", "counterfactuals")?;
    let cost = get(value, "$", "cost")?;

    let source_scores = get_array(value, "$", "source_scores")?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_f64().ok_or_else(|| {
                ReportJsonError::new(format!("$.source_scores[{i}]"), "expected a number")
            })
        })
        .collect::<Result<Vec<_>, ReportJsonError>>()?;

    let permutation = permutation_from_json(get(value, "$", "permutation")?, "$.permutation")?;
    let permutation_budget = if version == MIN_SCHEMA_VERSION as usize {
        // v1 documents never recorded the bound. When the search exhausted its
        // budget the evaluated count *is* the bound; otherwise assume the
        // engine default (documented approximation of the v1 era).
        if permutation.exhausted_budget {
            permutation.stats.candidates
        } else {
            DEFAULT_PERMUTATION_BUDGET
        }
    } else {
        get_usize(cost, "$.cost", "permutation_budget")?
    };

    let mut report = RageReport {
        question: get_str(value, "$", "question")?,
        context: context_from_json(get(value, "$", "context")?, "$.context")?,
        full_context_answer: get_str(answers, "$.answers", "full_context")?,
        empty_context_answer: get_str(answers, "$.answers", "empty_context")?,
        source_scores,
        top_down: combination_from_json(
            get(counterfactuals, "$.counterfactuals", "top_down")?,
            "$.counterfactuals.top_down",
        )?,
        bottom_up: combination_from_json(
            get(counterfactuals, "$.counterfactuals", "bottom_up")?,
            "$.counterfactuals.bottom_up",
        )?,
        permutation,
        permutation_budget,
        best_orders: orders_from_json(value, "$", "best_orders")?,
        worst_orders: orders_from_json(value, "$", "worst_orders")?,
        placements_completeness: Completeness::Exact,
        insights: insights_from_json(get(value, "$", "insights")?, "$.insights")?,
        evaluations: get_usize(cost, "$.cost", "evaluations")?,
        llm_calls: get_usize(cost, "$.cost", "llm_calls")?,
        corpus: corpus_from_json(value)?,
    };

    // The optional explicit completeness block (anytime/pruned reports)
    // overrides the derived markers.
    if let Some(block) = value.get("completeness") {
        report.top_down.completeness = completeness_from_json(
            get(block, "$.completeness", "top_down")?,
            "$.completeness.top_down",
        )?;
        report.bottom_up.completeness = completeness_from_json(
            get(block, "$.completeness", "bottom_up")?,
            "$.completeness.bottom_up",
        )?;
        report.permutation.completeness = completeness_from_json(
            get(block, "$.completeness", "permutation")?,
            "$.completeness.permutation",
        )?;
        report.placements_completeness = completeness_from_json(
            get(block, "$.completeness", "placements")?,
            "$.completeness.placements",
        )?;
        report.insights.completeness = completeness_from_json(
            get(block, "$.completeness", "insights")?,
            "$.completeness.insights",
        )?;
    }
    Ok(report)
}

/// The optional `corpus` provenance member: absent means `None`.
fn corpus_from_json(value: &JsonValue) -> Result<Option<CorpusProvenance>, ReportJsonError> {
    let Some(corpus) = value.get("corpus") else {
        return Ok(None);
    };
    let fingerprint = get_str(corpus, "$.corpus", "fingerprint")?;
    let fingerprint = u64::from_str_radix(&fingerprint, 16).map_err(|_| {
        ReportJsonError::new("$.corpus.fingerprint", "expected a 64-bit hex string")
    })?;
    Ok(Some(CorpusProvenance {
        version: get_usize(corpus, "$.corpus", "version")? as u64,
        fingerprint,
        num_docs: get_usize(corpus, "$.corpus", "num_docs")?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use rage_core::explanation::ReportConfig;

    fn report() -> RageReport {
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        scenarios::report_for(&scenario, &ReportConfig::default()).unwrap()
    }

    #[test]
    fn json_has_version_and_every_panel() {
        let value = to_json(&report());
        assert_eq!(value.get("schema_version"), Some(&JsonValue::Number(2.0)));
        assert_eq!(
            value.get("kind").and_then(JsonValue::as_str),
            Some("rage-report")
        );
        for key in [
            "question",
            "answers",
            "context",
            "source_scores",
            "counterfactuals",
            "permutation",
            "best_orders",
            "worst_orders",
            "insights",
            "cost",
        ] {
            assert!(value.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let value = to_json(&report());
        let reparsed = JsonValue::parse(&value.render()).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn from_json_reconstructs_the_report_exactly() {
        let original = report();
        let decoded = from_json(&to_json(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn corpus_provenance_is_optional_and_round_trips() {
        let mut stamped = report();
        assert!(
            to_json(&stamped).get("corpus").is_none(),
            "library reports carry no provenance member"
        );
        stamped.corpus = Some(CorpusProvenance {
            version: 3,
            fingerprint: 0xdead_beef_0042_0042,
            num_docs: 7,
        });
        let value = to_json(&stamped);
        assert_eq!(
            value
                .get("corpus")
                .and_then(|c| c.get("fingerprint"))
                .and_then(JsonValue::as_str),
            Some("deadbeef00420042")
        );
        let decoded = from_json(&value).unwrap();
        assert_eq!(decoded, stamped);
        let reparsed = JsonValue::parse(&value.render()).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn exact_reports_omit_the_completeness_block() {
        let value = to_json(&report());
        assert!(
            value.get("completeness").is_none(),
            "derivable markers must not be spelled out"
        );
        // v2 always records the effective permutation budget in the cost
        // panel (128 is the default ReportConfig's explicit budget).
        assert_eq!(
            value
                .get("cost")
                .and_then(|c| c.get("permutation_budget"))
                .and_then(JsonValue::as_f64),
            Some(128.0)
        );
    }

    #[test]
    fn truncated_markers_and_intervals_round_trip() {
        let mut truncated = report();
        truncated.top_down.completeness = Completeness::BudgetTruncated {
            evaluated: 0,
            pruned: 31,
        };
        truncated.placements_completeness = Completeness::DeadlineTruncated { elapsed_ms: 52 };
        truncated.insights.completeness = Completeness::BudgetTruncated {
            evaluated: 40,
            pruned: 10,
        };
        for entry in &mut truncated.insights.distribution.entries {
            entry.interval = Some(ShareInterval::normal_approx(entry.share, 40));
        }

        let value = to_json(&truncated);
        let block = value.get("completeness").expect("markers are inexact");
        assert_eq!(
            block
                .get("top_down")
                .and_then(|m| m.get("kind"))
                .and_then(JsonValue::as_str),
            Some("budget_truncated")
        );
        assert_eq!(
            block
                .get("placements")
                .and_then(|m| m.get("elapsed_ms"))
                .and_then(JsonValue::as_f64),
            Some(52.0)
        );
        assert_eq!(
            block
                .get("permutation")
                .and_then(|m| m.get("kind"))
                .and_then(JsonValue::as_str),
            Some("exact")
        );

        let decoded = from_json(&value).unwrap();
        assert_eq!(decoded, truncated);
        // And the rendered text reparses to the same value (full fidelity).
        let reparsed = JsonValue::parse(&value.render()).unwrap();
        assert_eq!(from_json(&reparsed).unwrap(), truncated);
    }

    #[test]
    fn unknown_completeness_kind_fails_with_a_dotted_path() {
        let mut truncated = report();
        truncated.placements_completeness = Completeness::DeadlineTruncated { elapsed_ms: 1 };
        let mut value = to_json(&truncated);
        if let JsonValue::Object(members) = &mut value {
            for (key, v) in members.iter_mut() {
                if key == "completeness" {
                    if let JsonValue::Object(block) = v {
                        for (name, marker) in block.iter_mut() {
                            if name == "insights" {
                                *marker = JsonValue::Object(vec![(
                                    "kind".into(),
                                    JsonValue::String("partial".into()),
                                )]);
                            }
                        }
                    }
                }
            }
        }
        let err = from_json(&value).unwrap_err();
        assert_eq!(err.path, "$.completeness.insights.kind");
        assert!(err.message.contains("partial"), "{}", err.message);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut value = to_json(&report());
        if let JsonValue::Object(members) = &mut value {
            for (key, v) in members.iter_mut() {
                if key == "schema_version" {
                    *v = JsonValue::Number(99.0);
                }
            }
        }
        let err = from_json(&value).unwrap_err();
        assert_eq!(err.path, "$.schema_version");
        assert!(err.message.contains("99"));
    }

    #[test]
    fn structural_errors_carry_a_path() {
        let err = from_json(&JsonValue::Object(vec![])).unwrap_err();
        assert_eq!(err.path, "$.schema_version");
        let err = from_json(&JsonValue::parse(r#"{"schema_version": 1}"#).unwrap()).unwrap_err();
        assert_eq!(err.path, "$.kind");
    }
}
