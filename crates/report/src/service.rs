//! The shared [`Service`] layer: one code path for the `report` CLI and the
//! HTTP server.
//!
//! Before this module, every consumer of the explanation engine wired its own
//! pipeline: the CLI built a fresh index + model per invocation, and a server
//! would have had to duplicate that wiring (and would have paid the full
//! index-build and report-generation cost on every request). [`Service`]
//! centralises it:
//!
//! * **Scenario runtimes** — per `(scenario, shards)` pair the service builds
//!   the pipeline once (BM25 index or [`ShardedSearcher`], prior-seeded
//!   [`SimLlm`] with an attached [`PrefixCache`]) and keeps it behind an
//!   `Arc`, so concurrent requests share the index, the model and the
//!   prefix cache. The prefix cache is bit-identical by construction
//!   (PR 2/PR 4 differential suites), so *sharing state never changes
//!   results* — `tests` below pin service output against the uncached
//!   [`scenarios::report_for`] oracle.
//! * **Report cache** — full [`RageReport`]s are memoised behind `Arc` under
//!   a [`ReportKey`] of `(scenario, report-config fingerprint, shards,
//!   schema_version)`. Reports are deterministic, so a cached report is
//!   exactly what regeneration would produce; the schema version is part of
//!   the key so a future v2 can never serve v1 cache entries.
//! * **Error taxonomy** — [`ServiceError`] splits caller mistakes (unknown
//!   scenario/format, invalid `k` or shard count, unanswerable query) from
//!   engine failures, so transports can map them to 4xx vs 5xx without
//!   string-matching (see [`ServiceError::kind`]).
//!
//! Every input that sizes a resource is validated *before* the resource is
//! built: shard counts are capped at [`MAX_SHARDS`], which also bounds the
//! runtime map — untrusted `shards=N` query parameters can neither spawn
//! thread storms nor grow the cache without limit.
//!
//! The service is `Sync`; the HTTP server shares one `Arc<Service>` across
//! its worker pool, and the CLI uses a short-lived instance for a single
//! render — the exact same path, which is what makes the server's
//! `/report?format=json` byte-identical to `report --format json`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rage_core::explanation::ReportConfig;
use rage_core::{RagPipeline, RagResponse, RageError, RageReport};
use rage_datasets::{Scenario, ScenarioRegistry};
use rage_llm::cache::PrefixCache;
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{IndexBuilder, RetrievalError, Retriever, Searcher, ShardedSearcher};

use crate::scenarios;
use crate::{render_html, render_markdown, to_json, SCHEMA_VERSION};

/// Output format of a rendered report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportFormat {
    /// Human-readable markdown ([`render_markdown`]).
    Markdown,
    /// The versioned structured JSON document ([`to_json`]).
    Json,
    /// The self-contained HTML page ([`render_html`]).
    Html,
}

impl ReportFormat {
    /// Parse a CLI/query-string format name (`md`/`markdown`, `json`, `html`).
    pub fn parse(name: &str) -> Result<Self, ServiceError> {
        match name {
            "md" | "markdown" => Ok(ReportFormat::Markdown),
            "json" => Ok(ReportFormat::Json),
            "html" => Ok(ReportFormat::Html),
            other => Err(ServiceError::UnknownFormat {
                format: other.to_string(),
            }),
        }
    }

    /// The MIME type a transport should declare for this format.
    pub fn content_type(&self) -> &'static str {
        match self {
            ReportFormat::Markdown => "text/markdown; charset=utf-8",
            ReportFormat::Json => "application/json",
            ReportFormat::Html => "text/html; charset=utf-8",
        }
    }
}

/// Coarse classification of a [`ServiceError`], for transports mapping errors
/// onto status codes without matching on variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The named resource (scenario) does not exist — HTTP 404.
    NotFound,
    /// The request itself was malformed (bad format, `k = 0`, empty query,
    /// shards = 0) — HTTP 400.
    BadRequest,
    /// The query was valid but retrieved no relevant sources — HTTP 404
    /// ("no results"), not a server fault.
    NoResults,
    /// The engine failed for a reason the caller cannot fix — HTTP 500.
    Internal,
}

/// Errors surfaced by the [`Service`] layer.
#[derive(Debug)]
pub enum ServiceError {
    /// The scenario name is not in the registry.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know (for error messages).
        known: Vec<String>,
    },
    /// The requested render format is not one of `md|json|html`.
    UnknownFormat {
        /// The unrecognised format string.
        format: String,
    },
    /// A request parameter was invalid (`k = 0`, `shards = 0`, empty query).
    InvalidArgument {
        /// Human-readable reason.
        reason: String,
    },
    /// Retrieval ran but found nothing relevant to the query.
    NoContext {
        /// The query that retrieved nothing.
        query: String,
    },
    /// The explanation engine failed internally.
    Engine(RageError),
}

impl ServiceError {
    /// Classify this error for status-code mapping.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ServiceError::UnknownScenario { .. } => ErrorKind::NotFound,
            ServiceError::UnknownFormat { .. } | ServiceError::InvalidArgument { .. } => {
                ErrorKind::BadRequest
            }
            ServiceError::NoContext { .. } => ErrorKind::NoResults,
            ServiceError::Engine(_) => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownScenario { name, known } => {
                write!(
                    f,
                    "unknown scenario {name:?} (one of: {})",
                    known.join(", ")
                )
            }
            ServiceError::UnknownFormat { format } => {
                write!(f, "unknown format {format:?} (md|json|html)")
            }
            ServiceError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            ServiceError::NoContext { query } => {
                write!(f, "no sources retrieved for query: {query}")
            }
            ServiceError::Engine(err) => write!(f, "explanation failed: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RageError> for ServiceError {
    fn from(err: RageError) -> Self {
        match err {
            // A malformed request is the caller's to fix, whichever layer
            // detected it.
            RageError::InvalidArgument { reason } => ServiceError::InvalidArgument { reason },
            RageError::Retrieval(RetrievalError::EmptyQuery) => ServiceError::InvalidArgument {
                reason: "query contains no indexable terms".to_string(),
            },
            RageError::EmptyContext { query } => ServiceError::NoContext { query },
            other => ServiceError::Engine(other),
        }
    }
}

/// The pipeline and model state shared by every request against one
/// `(scenario, shards)` pair.
struct ScenarioRuntime {
    scenario: Scenario,
    pipeline: RagPipeline<Box<dyn Retriever>>,
    prefix_cache: Arc<PrefixCache>,
}

/// Key of the memoised-report map.
///
/// `params` is a stable fingerprint of the [`ReportConfig`] (all fields are
/// plain data, so the derived `Debug` rendering is deterministic), and
/// `schema_version` pins the structured format: bumping the schema can never
/// serve stale cache entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ReportKey {
    scenario: String,
    params: String,
    shards: usize, // 0 = single index
    schema_version: u64,
}

/// Lock a cache map, recovering from poisoning.
///
/// The guarded maps only ever hold fully-constructed `Arc`ed values inserted
/// via `entry().or_insert`, so a panic elsewhere in a holder's request (the
/// server catches per-connection panics) cannot leave them mid-mutation;
/// recovering keeps the service answering instead of cascading one panic into
/// a permanent failure of every subsequent request.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hit/miss counters of the service's report cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportCacheStats {
    /// Requests answered from a memoised report.
    pub hits: u64,
    /// Requests that generated (and then memoised) a report.
    pub misses: u64,
}

/// The shared explanation service: scenario runtimes, memoised reports and
/// batched asks behind one `Sync` facade (see the [module docs](self)).
pub struct Service {
    config: ReportConfig,
    runtimes: Mutex<HashMap<(String, usize), Arc<ScenarioRuntime>>>,
    reports: Mutex<HashMap<ReportKey, Arc<RageReport>>>,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
}

impl Default for Service {
    fn default() -> Self {
        Self::new()
    }
}

impl Service {
    /// A service over the built-in registry with the default [`ReportConfig`]
    /// (the configuration the CLI, the golden snapshots and the server share).
    pub fn new() -> Self {
        Self::with_config(ReportConfig::default())
    }

    /// A service rendering reports under a custom [`ReportConfig`].
    pub fn with_config(config: ReportConfig) -> Self {
        Self {
            config,
            runtimes: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
            report_hits: AtomicU64::new(0),
            report_misses: AtomicU64::new(0),
        }
    }

    /// The scenario registry this service serves.
    pub fn registry(&self) -> &'static ScenarioRegistry {
        scenarios::registry()
    }

    /// The report configuration in use.
    pub fn config(&self) -> &ReportConfig {
        &self.config
    }

    /// `(name, summary)` pairs for every registered scenario, in presentation
    /// order (the `/scenarios` endpoint and `--list-scenarios` both render
    /// this).
    pub fn scenario_list(&self) -> Vec<(&'static str, &'static str)> {
        self.registry()
            .iter()
            .map(|entry| (entry.name(), entry.summary()))
            .collect()
    }

    /// Resolve a scenario name to its canonical registry spelling.
    fn canonical_name(&self, name: &str) -> Result<&'static str, ServiceError> {
        self.registry()
            .get(name)
            .map(|entry| -> &'static str { entry.name() })
            .ok_or_else(|| ServiceError::UnknownScenario {
                name: name.to_string(),
                known: self
                    .registry()
                    .names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect(),
            })
    }

    /// The shared runtime for `(scenario, shards)`, built on first use.
    fn runtime(
        &self,
        name: &str,
        shards: Option<usize>,
    ) -> Result<Arc<ScenarioRuntime>, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let shard_count = validate_shards(shards)?;
        let key = (canonical.to_string(), shard_count);
        if let Some(runtime) = lock_unpoisoned(&self.runtimes).get(&key) {
            return Ok(Arc::clone(runtime));
        }
        // Build outside the lock: index construction is the expensive part and
        // must not serialise unrelated scenarios. Two racing builders would
        // construct identical runtimes; first insert wins, so state stays
        // shared.
        let scenario = self
            .registry()
            .build(canonical)
            .expect("canonical name resolves");
        let prefix_cache = Arc::new(PrefixCache::default());
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()))
            .with_prefix_cache(Arc::clone(&prefix_cache));
        let retriever: Box<dyn Retriever> = if shard_count == 0 {
            Box::new(Searcher::new(
                IndexBuilder::default().build(&scenario.corpus),
            ))
        } else {
            Box::new(ShardedSearcher::from_corpus(&scenario.corpus, shard_count))
        };
        let runtime = Arc::new(ScenarioRuntime {
            scenario,
            pipeline: RagPipeline::new(retriever, Arc::new(llm)),
            prefix_cache,
        });
        let mut map = lock_unpoisoned(&self.runtimes);
        Ok(Arc::clone(map.entry(key).or_insert(runtime)))
    }

    /// The full explanation report for a scenario, memoised.
    ///
    /// `shards: Some(n)` retrieves through an `n`-way sharded index; the
    /// report is equal to the single-index one for every shard count, but the
    /// two are cached under distinct keys (they exercise distinct runtimes).
    pub fn report(
        &self,
        name: &str,
        shards: Option<usize>,
    ) -> Result<Arc<RageReport>, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let key = ReportKey {
            scenario: canonical.to_string(),
            params: format!("{:?}", self.config),
            shards: validate_shards(shards)?,
            schema_version: SCHEMA_VERSION,
        };
        if let Some(report) = lock_unpoisoned(&self.reports).get(&key) {
            self.report_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(report));
        }
        self.report_misses.fetch_add(1, Ordering::Relaxed);
        let runtime = self.runtime(canonical, shards)?;
        // Generate outside the lock (a report takes ~100ms-class time); two
        // racing generators produce identical reports, first insert wins.
        let (_, evaluator) = runtime
            .pipeline
            .ask_and_explain(&runtime.scenario.question, runtime.scenario.retrieval_k)?;
        let report = Arc::new(RageReport::generate(&evaluator, &self.config)?);
        let mut map = lock_unpoisoned(&self.reports);
        Ok(Arc::clone(map.entry(key).or_insert(report)))
    }

    /// Render a scenario's report in the requested format.
    ///
    /// This is *the* rendering path: the CLI and the HTTP server both call it,
    /// which is what makes their outputs byte-identical.
    pub fn render_report(
        &self,
        name: &str,
        format: ReportFormat,
        shards: Option<usize>,
    ) -> Result<String, ServiceError> {
        let report = self.report(name, shards)?;
        Ok(match format {
            ReportFormat::Markdown => render_markdown(&report),
            ReportFormat::Json => to_json(&report).render(),
            ReportFormat::Html => render_html(&report),
        })
    }

    /// One RAG round trip over a scenario's corpus with a caller-supplied
    /// query.
    ///
    /// `k: None` uses the scenario's own `retrieval_k`; `k: Some(0)` is an
    /// [`ServiceError::InvalidArgument`].
    pub fn ask(
        &self,
        name: &str,
        query: &str,
        k: Option<usize>,
    ) -> Result<RagResponse, ServiceError> {
        let runtime = self.runtime(name, None)?;
        let k = k.unwrap_or(runtime.scenario.retrieval_k);
        Ok(runtime.pipeline.ask(query, k)?)
    }

    /// A whole batch of queries against one scenario, submitted to the model
    /// through a single `ask_many` call (one batched inference).
    ///
    /// Per-query failures are reported element-wise; the outer error covers
    /// request-level problems (unknown scenario). This is the sink the
    /// server's cross-request admission coalesces concurrent `/ask` bodies
    /// into.
    pub fn ask_many(
        &self,
        name: &str,
        queries: &[&str],
        k: Option<usize>,
    ) -> Result<Vec<Result<RagResponse, ServiceError>>, ServiceError> {
        let runtime = self.runtime(name, None)?;
        let k = k.unwrap_or(runtime.scenario.retrieval_k);
        Ok(runtime
            .pipeline
            .ask_many(queries, k)
            .into_iter()
            .map(|result| result.map_err(ServiceError::from))
            .collect())
    }

    /// Hit/miss counters of the memoised-report cache.
    pub fn report_cache_stats(&self) -> ReportCacheStats {
        ReportCacheStats {
            hits: self.report_hits.load(Ordering::Relaxed),
            misses: self.report_misses.load(Ordering::Relaxed),
        }
    }

    /// The prefix-cache statistics of a scenario's shared model, if its
    /// runtime has been built.
    pub fn prefix_cache_stats(
        &self,
        name: &str,
        shards: Option<usize>,
    ) -> Option<rage_llm::cache::CacheStats> {
        let canonical = self.canonical_name(name).ok()?;
        let shard_count = validate_shards(shards).ok()?;
        let map = lock_unpoisoned(&self.runtimes);
        map.get(&(canonical.to_string(), shard_count))
            .map(|runtime| runtime.prefix_cache.stats())
    }
}

/// Upper bound on the `shards` parameter.
///
/// Every shard costs a partition slot and (during the parallel build) an OS
/// thread, and each distinct accepted count occupies a [`Service`] runtime
/// cache entry forever — and the parameter is remote-reachable through
/// `GET /report?shards=N`. Corpora here are at most a few thousand documents,
/// so 64 is far beyond any useful partitioning; anything larger is abuse, not
/// tuning, and is rejected as an [`ServiceError::InvalidArgument`] before any
/// allocation happens. The cap also bounds the runtime map itself: at most
/// `registry size × (MAX_SHARDS + 1)` entries can ever exist.
pub const MAX_SHARDS: usize = 64;

/// `shards = Some(0)` is meaningless; `None` means "single index" (key 0);
/// counts beyond [`MAX_SHARDS`] are rejected before any resource is sized
/// from them.
fn validate_shards(shards: Option<usize>) -> Result<usize, ServiceError> {
    match shards {
        None => Ok(0),
        Some(0) => Err(ServiceError::InvalidArgument {
            reason: "shard count must be at least 1".to_string(),
        }),
        Some(n) if n > MAX_SHARDS => Err(ServiceError::InvalidArgument {
            reason: format!("shard count must be at most {MAX_SHARDS}, got {n}"),
        }),
        Some(n) => Ok(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_the_standalone_scenario_path() {
        // The service shares pipelines and prefix caches across requests;
        // none of that may change a single byte relative to the uncached
        // one-shot path the golden snapshots pin.
        let service = Service::new();
        for name in ["us_open", "adversarial"] {
            let scenario = scenarios::scenario_by_name(name).unwrap();
            let oracle = scenarios::report_for(&scenario, &ReportConfig::default()).unwrap();
            let via_service = service.report(name, None).unwrap();
            assert_eq!(*via_service, oracle, "{name}");
            assert_eq!(
                service
                    .render_report(name, ReportFormat::Json, None)
                    .unwrap(),
                to_json(&oracle).render(),
                "{name} json"
            );
            assert_eq!(
                service
                    .render_report(name, ReportFormat::Markdown, None)
                    .unwrap(),
                render_markdown(&oracle),
                "{name} md"
            );
        }
    }

    #[test]
    fn sharded_render_is_equal_and_cached_separately() {
        let service = Service::new();
        let single = service
            .render_report("us_open", ReportFormat::Json, None)
            .unwrap();
        let sharded = service
            .render_report("us_open", ReportFormat::Json, Some(3))
            .unwrap();
        assert_eq!(single, sharded);
        // Two distinct cache entries (different runtimes), both misses.
        assert_eq!(service.report_cache_stats().misses, 2);
    }

    #[test]
    fn reports_are_memoised() {
        let service = Service::new();
        let first = service.report("us_open", None).unwrap();
        let second = service.report("us_open", None).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call must be a cache hit"
        );
        let stats = service.report_cache_stats();
        assert_eq!(stats, ReportCacheStats { hits: 1, misses: 1 });
        // All three formats render off the same memoised report.
        service
            .render_report("us_open", ReportFormat::Html, None)
            .unwrap();
        service
            .render_report("us-open", ReportFormat::Markdown, None)
            .unwrap();
        assert_eq!(service.report_cache_stats().hits, 3);
    }

    #[test]
    fn ask_answers_custom_queries_against_scenario_corpora() {
        let service = Service::new();
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        let response = service.ask("us_open", &scenario.question, None).unwrap();
        assert!(!response.answer().is_empty());
        // The service's answer equals a freshly wired pipeline's answer.
        let oracle = {
            let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
            let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
            RagPipeline::new(searcher, Arc::new(llm))
                .ask(&scenario.question, scenario.retrieval_k)
                .unwrap()
        };
        assert_eq!(response, oracle);
    }

    #[test]
    fn ask_many_matches_element_wise_ask() {
        let service = Service::new();
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        let queries = [scenario.question.as_str(), "who won the US Open final"];
        let batched = service.ask_many("us_open", &queries, Some(3)).unwrap();
        assert_eq!(batched.len(), 2);
        for (query, result) in queries.iter().zip(batched) {
            let direct = service.ask("us_open", query, Some(3)).unwrap();
            assert_eq!(result.unwrap(), direct);
        }
    }

    #[test]
    fn error_taxonomy_classifies_client_errors() {
        let service = Service::new();
        let err = service.report("nope", None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        assert!(err.to_string().contains("us_open"), "{err}");

        let err = ReportFormat::parse("yaml").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        let err = service.report("us_open", Some(0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        // Shard counts beyond the cap are rejected before any partition or
        // thread is sized from them (the parameter is remote-reachable).
        for huge in [MAX_SHARDS + 1, 999_999_999_999, usize::MAX] {
            let err = service.report("us_open", Some(huge)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::BadRequest, "shards={huge}");
            assert!(err.to_string().contains("at most"), "{err}");
        }
        assert!(service.report("us_open", Some(MAX_SHARDS)).is_ok());

        let err = service.ask("us_open", "question", Some(0)).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidArgument { .. }), "{err}");
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        // An empty query is a client error, not an engine failure.
        let err = service.ask("us_open", "???", None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        // A well-formed query matching nothing is "no results".
        let err = service
            .ask("us_open", "quantum chromodynamics flux capacitor", None)
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NoResults);
    }

    #[test]
    fn scenario_list_mirrors_the_registry() {
        let service = Service::new();
        let list = service.scenario_list();
        assert_eq!(list.len(), service.registry().len());
        assert!(list.iter().any(|(name, _)| *name == "us_open"));
        assert!(list.iter().all(|(_, summary)| !summary.is_empty()));
    }
}
