//! The shared [`Service`] layer: one code path for the `report` CLI and the
//! HTTP server.
//!
//! Before this module, every consumer of the explanation engine wired its own
//! pipeline: the CLI built a fresh index + model per invocation, and a server
//! would have had to duplicate that wiring (and would have paid the full
//! index-build and report-generation cost on every request). [`Service`]
//! centralises it:
//!
//! * **Corpus states** — per scenario the service owns one *authoritative*
//!   mutable corpus plus a monotonically increasing corpus version (starting
//!   at 1 for the registry seed). [`Service::add_document`],
//!   [`Service::update_document`], [`Service::upsert_document`] and
//!   [`Service::remove_document`] mutate it; every mutation advances the
//!   version by exactly one and is applied synchronously to every live
//!   runtime of the scenario, so a [`LiveSearcher`] is always bit-identical
//!   to a from-scratch rebuild of the current corpus (the contract pinned by
//!   `crates/retrieval/tests/incremental.rs`).
//! * **Scenario runtimes** — per `(scenario, shards)` pair the service builds
//!   the pipeline once (a [`LiveSearcher`] over the authoritative corpus,
//!   prior-seeded [`SimLlm`] with an attached [`PrefixCache`]) and keeps it
//!   behind an `Arc`, so concurrent requests share the index, the model and
//!   the prefix cache. The prefix cache is bit-identical by construction
//!   (PR 2/PR 4 differential suites), so *sharing state never changes
//!   results* — `tests` below pin service output against the uncached
//!   [`scenarios::report_for`] oracle.
//! * **Report cache** — full [`RageReport`]s are memoised behind `Arc` under
//!   a [`ReportKey`] of `(scenario, report-config fingerprint, shards,
//!   schema_version, corpus_version, deadline_ms)`. Reports are deterministic
//!   *given a corpus version*, so a cached report is exactly what
//!   regeneration would produce; the schema version is part of the key so a
//!   future v3 can never serve v2 cache entries, and the anytime deadline is
//!   part of the key so deadline-truncated reports can never poison the
//!   exact cache.
//! * **Error taxonomy** — [`ServiceError`] splits caller mistakes (unknown
//!   scenario/format, invalid `k` or shard count, unanswerable query,
//!   duplicate document id) from engine failures, so transports can map them
//!   to 4xx vs 5xx without string-matching (see [`ServiceError::kind`]).
//!
//! ## Cache-invalidation rules
//!
//! Three caches sit between a request and the engine, and every one of them
//! keys on (or is cleared by) the corpus version, so no byte generated
//! against corpus version `N` can ever be served for version `M ≠ N`:
//!
//! 1. **Report cache** — [`ReportKey`] embeds the corpus version. A mutation
//!    therefore *misses* the cache on the next request (a fresh report is
//!    generated and stamped with the new version) without touching other
//!    scenarios' entries. Entries for superseded versions are retained —
//!    they are what [`Service::diff_reports`] serves historical versions
//!    from — but at most [`MAX_CACHED_VERSIONS`] distinct versions per
//!    scenario; older ones are pruned on mutation.
//! 2. **Prefix cache** — entries are pure functions of `(token, position)`
//!    and the model seed, so a mutation cannot make them *wrong*; they are
//!    cleared anyway on every mutation so no state predating the mutation
//!    survives in a runtime, keeping the "runtime ≡ freshly built runtime"
//!    argument unconditional.
//! 3. **Runtime indexes** — not invalidated but *mutated in place* under the
//!    scenario's corpus lock (add/remove/update on the [`LiveSearcher`]),
//!    then re-stamped with the authoritative version. Readers never observe
//!    a half-applied mutation (the searcher's internal `RwLock`), and the
//!    incremental-equivalence suite proves the mutated index scores
//!    bit-identically to a rebuild.
//!
//! Every input that sizes a resource is validated *before* the resource is
//! built: shard counts are capped at [`MAX_SHARDS`] (bounding the runtime
//! map), corpora at [`MAX_CORPUS_DOCS`] (bounding what a remote-reachable
//! mutation stream can grow) — untrusted parameters can neither spawn thread
//! storms nor grow memory without limit.
//!
//! The service is `Sync`; the HTTP server shares one `Arc<Service>` across
//! its worker pool, and the CLI uses a short-lived instance for a single
//! render — the exact same path, which is what makes the server's
//! `/report?format=json` byte-identical to `report --format json`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rage_core::explanation::ReportConfig;
use rage_core::{CorpusProvenance, Deadline, RagPipeline, RagResponse, RageError, RageReport};
use rage_datasets::{Scenario, ScenarioRegistry};
use rage_llm::cache::PrefixCache;
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{corpus_fingerprint, Document, LiveSearcher, RetrievalError, Retriever};

use crate::diff::{diff, ReportDiff};
use crate::scenarios;
use crate::{render_html, render_markdown, to_json, SCHEMA_VERSION};

/// Output format of a rendered report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportFormat {
    /// Human-readable markdown ([`render_markdown`]).
    Markdown,
    /// The versioned structured JSON document ([`to_json`]).
    Json,
    /// The self-contained HTML page ([`render_html`]).
    Html,
}

impl ReportFormat {
    /// Parse a CLI/query-string format name (`md`/`markdown`, `json`, `html`).
    pub fn parse(name: &str) -> Result<Self, ServiceError> {
        match name {
            "md" | "markdown" => Ok(ReportFormat::Markdown),
            "json" => Ok(ReportFormat::Json),
            "html" => Ok(ReportFormat::Html),
            other => Err(ServiceError::UnknownFormat {
                format: other.to_string(),
            }),
        }
    }

    /// The MIME type a transport should declare for this format.
    pub fn content_type(&self) -> &'static str {
        match self {
            ReportFormat::Markdown => "text/markdown; charset=utf-8",
            ReportFormat::Json => "application/json",
            ReportFormat::Html => "text/html; charset=utf-8",
        }
    }
}

/// Coarse classification of a [`ServiceError`], for transports mapping errors
/// onto status codes without matching on variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The named resource (scenario, document, corpus version) does not
    /// exist — HTTP 404.
    NotFound,
    /// The request itself was malformed (bad format, `k = 0`, empty query,
    /// shards = 0) — HTTP 400.
    BadRequest,
    /// The query was valid but retrieved no relevant sources — HTTP 404
    /// ("no results"), not a server fault.
    NoResults,
    /// The mutation conflicts with current corpus state (adding a document
    /// id that already exists) — HTTP 409.
    Conflict,
    /// The engine failed for a reason the caller cannot fix — HTTP 500.
    Internal,
}

/// Errors surfaced by the [`Service`] layer.
#[derive(Debug)]
pub enum ServiceError {
    /// The scenario name is not in the registry.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know (for error messages).
        known: Vec<String>,
    },
    /// The requested render format is not one of `md|json|html`.
    UnknownFormat {
        /// The unrecognised format string.
        format: String,
    },
    /// A request parameter was invalid (`k = 0`, `shards = 0`, empty query).
    InvalidArgument {
        /// Human-readable reason.
        reason: String,
    },
    /// A strict add targeted a document id that is already live.
    DuplicateDocument {
        /// The conflicting id.
        id: String,
    },
    /// An update or removal targeted a document id that is not live.
    UnknownDocument {
        /// The missing id.
        id: String,
    },
    /// A historical corpus version was requested that is no longer (or not
    /// yet) cached.
    UnknownVersion {
        /// The requested version.
        version: u64,
        /// The corpus's current version.
        current: u64,
    },
    /// Retrieval ran but found nothing relevant to the query.
    NoContext {
        /// The query that retrieved nothing.
        query: String,
    },
    /// The explanation engine failed internally.
    Engine(RageError),
}

impl ServiceError {
    /// Classify this error for status-code mapping.
    pub fn kind(&self) -> ErrorKind {
        match self {
            ServiceError::UnknownScenario { .. }
            | ServiceError::UnknownDocument { .. }
            | ServiceError::UnknownVersion { .. } => ErrorKind::NotFound,
            ServiceError::UnknownFormat { .. } | ServiceError::InvalidArgument { .. } => {
                ErrorKind::BadRequest
            }
            ServiceError::DuplicateDocument { .. } => ErrorKind::Conflict,
            ServiceError::NoContext { .. } => ErrorKind::NoResults,
            ServiceError::Engine(_) => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownScenario { name, known } => {
                write!(
                    f,
                    "unknown scenario {name:?} (one of: {})",
                    known.join(", ")
                )
            }
            ServiceError::UnknownFormat { format } => {
                write!(f, "unknown format {format:?} (md|json|html)")
            }
            ServiceError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            ServiceError::DuplicateDocument { id } => {
                write!(
                    f,
                    "document {id:?} already exists (use mode=update or mode=upsert)"
                )
            }
            ServiceError::UnknownDocument { id } => {
                write!(f, "no document with id {id:?} in the corpus")
            }
            ServiceError::UnknownVersion { version, current } => {
                write!(
                    f,
                    "corpus version {version} is not cached (current version is {current})"
                )
            }
            ServiceError::NoContext { query } => {
                write!(f, "no sources retrieved for query: {query}")
            }
            ServiceError::Engine(err) => write!(f, "explanation failed: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RageError> for ServiceError {
    fn from(err: RageError) -> Self {
        match err {
            // A malformed request is the caller's to fix, whichever layer
            // detected it.
            RageError::InvalidArgument { reason } => ServiceError::InvalidArgument { reason },
            RageError::Retrieval(RetrievalError::EmptyQuery) => ServiceError::InvalidArgument {
                reason: "query contains no indexable terms".to_string(),
            },
            RageError::EmptyContext { query } => ServiceError::NoContext { query },
            other => ServiceError::Engine(other),
        }
    }
}

/// Map a mutation failure from the retrieval layer onto the service taxonomy.
fn mutation_error(err: RetrievalError) -> ServiceError {
    match err {
        RetrievalError::DuplicateDocumentId(id) => ServiceError::DuplicateDocument { id },
        RetrievalError::UnknownDocument(id) => ServiceError::UnknownDocument { id },
        other => ServiceError::Engine(RageError::Retrieval(other)),
    }
}

/// The authoritative corpus of one scenario plus its version counter.
///
/// `scenario.corpus` starts as the registry seed (version 1); every accepted
/// mutation advances `version` by exactly one. All runtimes of the scenario
/// are mutated under this state's lock, so "state version == every runtime's
/// version" holds at every quiescent point.
struct CorpusState {
    scenario: Scenario,
    version: u64,
}

impl CorpusState {
    fn provenance(&self) -> CorpusProvenance {
        CorpusProvenance {
            version: self.version,
            fingerprint: corpus_fingerprint(&self.scenario.corpus),
            num_docs: self.scenario.corpus.len(),
        }
    }
}

/// One corpus mutation, applied identically to the authoritative corpus and
/// to every live runtime index.
enum CorpusOp {
    /// Strict add: fails on a live duplicate id.
    Add(Document),
    /// Strict replace: fails when the id is not live.
    Update(Document),
    /// Replace-or-add: never fails on id state.
    Upsert(Document),
    /// Remove by id: fails when the id is not live.
    Remove(String),
}

/// The pipeline and model state shared by every request against one
/// `(scenario, shards)` pair.
struct ScenarioRuntime {
    question: String,
    retrieval_k: usize,
    /// The mutable index behind `pipeline` — mutations go through here.
    live: Arc<LiveSearcher>,
    pipeline: RagPipeline<Box<dyn Retriever>>,
    prefix_cache: Arc<PrefixCache>,
}

/// Key of the memoised-report map.
///
/// `params` is a stable fingerprint of the [`ReportConfig`] (all fields are
/// plain data, so the derived `Debug` rendering is deterministic),
/// `schema_version` pins the structured format (bumping the schema can never
/// serve stale cache entries), and `corpus_version` pins the corpus content:
/// a mutation changes the key, so a report generated before the mutation can
/// never be served after it. `deadline_ms` keys anytime requests separately —
/// a deadline-truncated report can never be served where the exhaustive one
/// was asked for (or vice versa), so anytime traffic cannot poison the exact
/// cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ReportKey {
    scenario: String,
    params: String,
    shards: usize, // 0 = single index
    schema_version: u64,
    corpus_version: u64,
    deadline_ms: Option<u64>,
}

/// Lock a cache map, recovering from poisoning.
///
/// The guarded maps only ever hold fully-constructed `Arc`ed values inserted
/// via `entry().or_insert`, so a panic elsewhere in a holder's request (the
/// server catches per-connection panics) cannot leave them mid-mutation;
/// recovering keeps the service answering instead of cascading one panic into
/// a permanent failure of every subsequent request.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hit/miss counters of the service's report cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportCacheStats {
    /// Requests answered from a memoised report.
    pub hits: u64,
    /// Requests that generated (and then memoised) a report.
    pub misses: u64,
}

/// The shared explanation service: authoritative corpora, scenario runtimes,
/// memoised reports and batched asks behind one `Sync` facade (see the
/// [module docs](self)).
pub struct Service {
    config: ReportConfig,
    corpora: Mutex<HashMap<String, Arc<Mutex<CorpusState>>>>,
    runtimes: Mutex<HashMap<(String, usize), Arc<ScenarioRuntime>>>,
    reports: Mutex<HashMap<ReportKey, Arc<RageReport>>>,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
}

impl Default for Service {
    fn default() -> Self {
        Self::new()
    }
}

impl Service {
    /// A service over the built-in registry with the default [`ReportConfig`]
    /// (the configuration the CLI, the golden snapshots and the server share).
    pub fn new() -> Self {
        Self::with_config(ReportConfig::default())
    }

    /// A service rendering reports under a custom [`ReportConfig`].
    pub fn with_config(config: ReportConfig) -> Self {
        Self {
            config,
            corpora: Mutex::new(HashMap::new()),
            runtimes: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
            report_hits: AtomicU64::new(0),
            report_misses: AtomicU64::new(0),
        }
    }

    /// The scenario registry this service serves.
    pub fn registry(&self) -> &'static ScenarioRegistry {
        scenarios::registry()
    }

    /// The report configuration in use.
    pub fn config(&self) -> &ReportConfig {
        &self.config
    }

    /// `(name, summary)` pairs for every registered scenario, in presentation
    /// order (the `/scenarios` endpoint and `--list-scenarios` both render
    /// this).
    pub fn scenario_list(&self) -> Vec<(&'static str, &'static str)> {
        self.registry()
            .iter()
            .map(|entry| (entry.name(), entry.summary()))
            .collect()
    }

    /// Resolve a scenario name to its canonical registry spelling.
    fn canonical_name(&self, name: &str) -> Result<&'static str, ServiceError> {
        self.registry()
            .get(name)
            .map(|entry| -> &'static str { entry.name() })
            .ok_or_else(|| ServiceError::UnknownScenario {
                name: name.to_string(),
                known: self
                    .registry()
                    .names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect(),
            })
    }

    /// The authoritative corpus state of a scenario, seeded from the registry
    /// on first use (at version 1).
    fn corpus_state(&self, canonical: &'static str) -> Arc<Mutex<CorpusState>> {
        if let Some(state) = lock_unpoisoned(&self.corpora).get(canonical) {
            return Arc::clone(state);
        }
        // Build outside the lock; two racing builders construct identical
        // version-1 states and the first insert wins.
        let scenario = self
            .registry()
            .build(canonical)
            .expect("canonical name resolves");
        let state = Arc::new(Mutex::new(CorpusState {
            scenario,
            version: 1,
        }));
        let mut map = lock_unpoisoned(&self.corpora);
        Arc::clone(map.entry(canonical.to_string()).or_insert(state))
    }

    /// The shared runtime for `(scenario, shards)`, built on first use over
    /// the *current* authoritative corpus.
    ///
    /// The build holds the scenario's corpus lock, so a runtime can never be
    /// born stale: mutations wait for the build, then apply to the freshly
    /// registered runtime like any other. Unrelated scenarios lock different
    /// states and build in parallel.
    fn runtime(
        &self,
        name: &str,
        shards: Option<usize>,
    ) -> Result<Arc<ScenarioRuntime>, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let shard_count = validate_shards(shards)?;
        let key = (canonical.to_string(), shard_count);
        if let Some(runtime) = lock_unpoisoned(&self.runtimes).get(&key) {
            return Ok(Arc::clone(runtime));
        }
        let state_arc = self.corpus_state(canonical);
        let state = lock_unpoisoned(&state_arc);
        let prefix_cache = Arc::new(PrefixCache::default());
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(state.scenario.prior.clone()))
            .with_prefix_cache(Arc::clone(&prefix_cache));
        // `shards = 0` ("single index") runs a 1-shard live index: the
        // sharding contract makes it bit-identical to an unsharded
        // `Searcher`, and it accepts mutations.
        let live = Arc::new(LiveSearcher::from_corpus(
            &state.scenario.corpus,
            shard_count.max(1),
        ));
        live.set_version(state.version);
        let retriever: Box<dyn Retriever> = Box::new(Arc::clone(&live));
        let runtime = Arc::new(ScenarioRuntime {
            question: state.scenario.question.clone(),
            retrieval_k: state.scenario.retrieval_k,
            live,
            pipeline: RagPipeline::new(retriever, Arc::new(llm)),
            prefix_cache,
        });
        let mut map = lock_unpoisoned(&self.runtimes);
        Ok(Arc::clone(map.entry(key).or_insert(runtime)))
    }

    fn report_key(
        &self,
        canonical: &str,
        shard_count: usize,
        corpus_version: u64,
        deadline_ms: Option<u64>,
    ) -> ReportKey {
        ReportKey {
            scenario: canonical.to_string(),
            params: format!("{:?}", self.config),
            shards: shard_count,
            schema_version: SCHEMA_VERSION,
            corpus_version,
            deadline_ms,
        }
    }

    /// Generate a report through a runtime and stamp it with the corpus
    /// provenance it was generated against. With a deadline the clock starts
    /// here, covering exactly the explanation searches.
    fn generate(
        &self,
        runtime: &ScenarioRuntime,
        provenance: CorpusProvenance,
        deadline_ms: Option<u64>,
    ) -> Result<Arc<RageReport>, ServiceError> {
        let (_, evaluator) = runtime
            .pipeline
            .ask_and_explain(&runtime.question, runtime.retrieval_k)?;
        let deadline = deadline_ms.map(Deadline::after_ms);
        let mut report = RageReport::generate_with_deadline(&evaluator, &self.config, deadline)?;
        report.corpus = Some(provenance);
        Ok(Arc::new(report))
    }

    /// The full explanation report for a scenario at its *current* corpus
    /// version, memoised.
    ///
    /// `shards: Some(n)` retrieves through an `n`-way sharded index; the
    /// report is equal to the single-index one for every shard count, but the
    /// two are cached under distinct keys (they exercise distinct runtimes).
    /// The served report's `corpus` provenance always names the exact version
    /// it was generated against.
    pub fn report(
        &self,
        name: &str,
        shards: Option<usize>,
    ) -> Result<Arc<RageReport>, ServiceError> {
        self.report_with_deadline(name, shards, None)
    }

    /// An anytime report: like [`Service::report`], but every explanation
    /// search is bounded by `deadline_ms` of wall clock (measured from the
    /// start of generation); sections the deadline cuts short carry
    /// non-`Exact` [`rage_core::Completeness`] markers.
    ///
    /// The deadline is part of the cache key, so anytime reports are memoised
    /// separately per requested deadline and can never displace (or be served
    /// in place of) the exhaustive report.
    pub fn report_with_deadline(
        &self,
        name: &str,
        shards: Option<usize>,
        deadline_ms: Option<u64>,
    ) -> Result<Arc<RageReport>, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let shard_count = validate_shards(shards)?;
        let state_arc = self.corpus_state(canonical);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let provenance = lock_unpoisoned(&state_arc).provenance();
            let key = self.report_key(canonical, shard_count, provenance.version, deadline_ms);
            if let Some(report) = lock_unpoisoned(&self.reports).get(&key) {
                self.report_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(report));
            }
            self.report_misses.fetch_add(1, Ordering::Relaxed);
            let runtime = self.runtime(canonical, shards)?;
            if attempts > 3 {
                // Pessimistic fallback: pin the corpus for the whole
                // generation so a hostile mutation stream cannot starve this
                // request forever. Mutations queue behind the lock (~100ms).
                let state = lock_unpoisoned(&state_arc);
                let provenance = state.provenance();
                let report = self.generate(&runtime, provenance, deadline_ms)?;
                let key = self.report_key(canonical, shard_count, provenance.version, deadline_ms);
                let mut map = lock_unpoisoned(&self.reports);
                return Ok(Arc::clone(map.entry(key).or_insert(report)));
            }
            // Optimistic path: generate without blocking mutations, publish
            // only if the corpus did not move underneath the generation —
            // otherwise the report describes a corpus that no longer exists
            // and is regenerated against the new version.
            let report = self.generate(&runtime, provenance, deadline_ms)?;
            let state = lock_unpoisoned(&state_arc);
            if state.version == provenance.version {
                drop(state);
                let mut map = lock_unpoisoned(&self.reports);
                return Ok(Arc::clone(map.entry(key).or_insert(report)));
            }
        }
    }

    /// Render a scenario's report in the requested format.
    ///
    /// This is *the* rendering path: the CLI and the HTTP server both call it,
    /// which is what makes their outputs byte-identical.
    pub fn render_report(
        &self,
        name: &str,
        format: ReportFormat,
        shards: Option<usize>,
    ) -> Result<String, ServiceError> {
        self.render_report_with_deadline(name, format, shards, None)
    }

    /// Render a scenario's report, optionally bounded by an anytime deadline
    /// (see [`Service::report_with_deadline`]).
    pub fn render_report_with_deadline(
        &self,
        name: &str,
        format: ReportFormat,
        shards: Option<usize>,
        deadline_ms: Option<u64>,
    ) -> Result<String, ServiceError> {
        let report = self.report_with_deadline(name, shards, deadline_ms)?;
        Ok(match format {
            ReportFormat::Markdown => render_markdown(&report),
            ReportFormat::Json => to_json(&report).render(),
            ReportFormat::Html => render_html(&report),
        })
    }

    /// The current corpus identity of a scenario (version, fingerprint,
    /// document count), materialising the seed corpus on first use.
    pub fn corpus_provenance(&self, name: &str) -> Result<CorpusProvenance, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let state_arc = self.corpus_state(canonical);
        let provenance = lock_unpoisoned(&state_arc).provenance();
        Ok(provenance)
    }

    /// `(scenario, provenance)` for every corpus that has been materialised,
    /// sorted by scenario name (the `/stats` endpoint renders this).
    pub fn corpus_versions(&self) -> Vec<(String, CorpusProvenance)> {
        let map = lock_unpoisoned(&self.corpora);
        let mut out: Vec<(String, CorpusProvenance)> = map
            .iter()
            .map(|(name, state)| (name.clone(), lock_unpoisoned(state).provenance()))
            .collect();
        drop(map);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Strictly add a new document to a scenario's corpus.
    ///
    /// Fails with [`ServiceError::DuplicateDocument`] ([`ErrorKind::Conflict`],
    /// HTTP 409) when the id is already live — a typed error, never the
    /// `Corpus::push` panic.
    pub fn add_document(
        &self,
        name: &str,
        doc: Document,
    ) -> Result<CorpusProvenance, ServiceError> {
        self.mutate(name, CorpusOp::Add(doc))
    }

    /// Replace the live document carrying `doc.id`. Fails with
    /// [`ServiceError::UnknownDocument`] when absent.
    pub fn update_document(
        &self,
        name: &str,
        doc: Document,
    ) -> Result<CorpusProvenance, ServiceError> {
        self.mutate(name, CorpusOp::Update(doc))
    }

    /// Replace the document if its id is live, add it otherwise. One version
    /// bump either way.
    pub fn upsert_document(
        &self,
        name: &str,
        doc: Document,
    ) -> Result<CorpusProvenance, ServiceError> {
        self.mutate(name, CorpusOp::Upsert(doc))
    }

    /// Remove a document by id. Fails with [`ServiceError::UnknownDocument`]
    /// when absent.
    pub fn remove_document(&self, name: &str, id: &str) -> Result<CorpusProvenance, ServiceError> {
        self.mutate(name, CorpusOp::Remove(id.to_string()))
    }

    /// Apply one mutation to the authoritative corpus and to every live
    /// runtime of the scenario, returning the new provenance.
    ///
    /// All error paths exit before any shared state moves: the version bumps
    /// and the runtimes mutate only after the authoritative corpus accepted
    /// the operation. The whole application happens under the scenario's
    /// corpus lock, so concurrent requests observe either the old corpus
    /// everywhere or the new corpus everywhere.
    fn mutate(&self, name: &str, op: CorpusOp) -> Result<CorpusProvenance, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let state_arc = self.corpus_state(canonical);
        let mut state = lock_unpoisoned(&state_arc);
        match &op {
            CorpusOp::Add(doc) => {
                validate_document(doc)?;
                if state.scenario.corpus.len() >= MAX_CORPUS_DOCS {
                    return Err(corpus_full());
                }
                state
                    .scenario
                    .corpus
                    .try_push(doc.clone())
                    .map_err(mutation_error)?;
            }
            CorpusOp::Update(doc) => {
                validate_document(doc)?;
                state
                    .scenario
                    .corpus
                    .replace(doc.clone())
                    .map_err(mutation_error)?;
            }
            CorpusOp::Upsert(doc) => {
                validate_document(doc)?;
                if state.scenario.corpus.get(&doc.id).is_none()
                    && state.scenario.corpus.len() >= MAX_CORPUS_DOCS
                {
                    return Err(corpus_full());
                }
                state.scenario.corpus.upsert(doc.clone());
            }
            CorpusOp::Remove(id) => {
                state
                    .scenario
                    .corpus
                    .remove(id)
                    .ok_or_else(|| ServiceError::UnknownDocument { id: id.clone() })?;
            }
        }
        state.version += 1;
        let version = state.version;
        let runtimes: Vec<Arc<ScenarioRuntime>> = lock_unpoisoned(&self.runtimes)
            .iter()
            .filter(|((scenario, _), _)| scenario == canonical)
            .map(|(_, runtime)| Arc::clone(runtime))
            .collect();
        for runtime in runtimes {
            // The authoritative corpus accepted the operation and every
            // runtime mirrors it exactly (mutations only happen here, under
            // the state lock), so re-applying cannot fail.
            match &op {
                CorpusOp::Add(doc) => {
                    runtime
                        .live
                        .add(doc.clone())
                        .expect("live index in sync with authoritative corpus");
                }
                CorpusOp::Update(doc) => {
                    runtime
                        .live
                        .update(doc.clone())
                        .expect("live index in sync with authoritative corpus");
                }
                CorpusOp::Upsert(doc) => {
                    runtime
                        .live
                        .upsert(doc.clone())
                        .expect("live index in sync with authoritative corpus");
                }
                CorpusOp::Remove(id) => {
                    runtime
                        .live
                        .remove(id)
                        .expect("live index in sync with authoritative corpus");
                }
            }
            runtime.live.set_version(version);
            // Prefix-cache entries are pure functions of their keys and would
            // stay *correct*, but clearing guarantees no pipeline state
            // predating the mutation survives (see the module docs).
            runtime.prefix_cache.clear();
        }
        self.prune_report_versions(canonical);
        Ok(state.provenance())
    }

    /// Keep at most [`MAX_CACHED_VERSIONS`] distinct corpus versions of one
    /// scenario in the report cache (older versions stop being servable
    /// through [`Service::diff_reports`] once pruned).
    fn prune_report_versions(&self, canonical: &str) {
        let mut map = lock_unpoisoned(&self.reports);
        let mut versions: Vec<u64> = map
            .keys()
            .filter(|key| key.scenario == canonical)
            .map(|key| key.corpus_version)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        if versions.len() > MAX_CACHED_VERSIONS {
            let cutoff = versions[versions.len() - MAX_CACHED_VERSIONS];
            map.retain(|key, _| key.scenario != canonical || key.corpus_version >= cutoff);
        }
    }

    /// The structured diff between a scenario's reports at two corpus
    /// versions.
    ///
    /// The current version is generated (and cached) on demand; historical
    /// versions are served from the report cache and fail with
    /// [`ServiceError::UnknownVersion`] when no report was cached at that
    /// version (reports are only generated on request, so a version nobody
    /// asked a report for has nothing to diff against).
    pub fn diff_reports(
        &self,
        name: &str,
        from: u64,
        to: u64,
        shards: Option<usize>,
    ) -> Result<ReportDiff, ServiceError> {
        let canonical = self.canonical_name(name)?;
        let shard_count = validate_shards(shards)?;
        let a = self.report_at(canonical, shard_count, shards, from)?;
        let b = self.report_at(canonical, shard_count, shards, to)?;
        Ok(diff(&a, &b))
    }

    /// A report at a specific corpus version: generated when `version` is
    /// current, served from the version-keyed cache otherwise.
    fn report_at(
        &self,
        canonical: &'static str,
        shard_count: usize,
        shards: Option<usize>,
        version: u64,
    ) -> Result<Arc<RageReport>, ServiceError> {
        let state_arc = self.corpus_state(canonical);
        let current = lock_unpoisoned(&state_arc).version;
        if version == current {
            return self.report(canonical, shards);
        }
        let key = self.report_key(canonical, shard_count, version, None);
        lock_unpoisoned(&self.reports)
            .get(&key)
            .map(Arc::clone)
            .ok_or(ServiceError::UnknownVersion { version, current })
    }

    /// One RAG round trip over a scenario's corpus with a caller-supplied
    /// query.
    ///
    /// `k: None` uses the scenario's own `retrieval_k`; `k: Some(0)` is an
    /// [`ServiceError::InvalidArgument`].
    pub fn ask(
        &self,
        name: &str,
        query: &str,
        k: Option<usize>,
    ) -> Result<RagResponse, ServiceError> {
        let runtime = self.runtime(name, None)?;
        let k = k.unwrap_or(runtime.retrieval_k);
        Ok(runtime.pipeline.ask(query, k)?)
    }

    /// A whole batch of queries against one scenario, submitted to the model
    /// through a single `ask_many` call (one batched inference).
    ///
    /// Per-query failures are reported element-wise; the outer error covers
    /// request-level problems (unknown scenario). This is the sink the
    /// server's cross-request admission coalesces concurrent `/ask` bodies
    /// into.
    pub fn ask_many(
        &self,
        name: &str,
        queries: &[&str],
        k: Option<usize>,
    ) -> Result<Vec<Result<RagResponse, ServiceError>>, ServiceError> {
        let runtime = self.runtime(name, None)?;
        let k = k.unwrap_or(runtime.retrieval_k);
        Ok(runtime
            .pipeline
            .ask_many(queries, k)
            .into_iter()
            .map(|result| result.map_err(ServiceError::from))
            .collect())
    }

    /// Hit/miss counters of the memoised-report cache.
    pub fn report_cache_stats(&self) -> ReportCacheStats {
        ReportCacheStats {
            hits: self.report_hits.load(Ordering::Relaxed),
            misses: self.report_misses.load(Ordering::Relaxed),
        }
    }

    /// The prefix-cache statistics of a scenario's shared model, if its
    /// runtime has been built.
    pub fn prefix_cache_stats(
        &self,
        name: &str,
        shards: Option<usize>,
    ) -> Option<rage_llm::cache::CacheStats> {
        let canonical = self.canonical_name(name).ok()?;
        let shard_count = validate_shards(shards).ok()?;
        let map = lock_unpoisoned(&self.runtimes);
        map.get(&(canonical.to_string(), shard_count))
            .map(|runtime| runtime.prefix_cache.stats())
    }
}

/// Upper bound on the `shards` parameter.
///
/// Every shard costs a partition slot and (during the parallel build) an OS
/// thread, and each distinct accepted count occupies a [`Service`] runtime
/// cache entry forever — and the parameter is remote-reachable through
/// `GET /report?shards=N`. Corpora here are at most a few thousand documents,
/// so 64 is far beyond any useful partitioning; anything larger is abuse, not
/// tuning, and is rejected as an [`ServiceError::InvalidArgument`] before any
/// allocation happens. The cap also bounds the runtime map itself: at most
/// `registry size × (MAX_SHARDS + 1)` entries can ever exist.
pub const MAX_SHARDS: usize = 64;

/// Upper bound on a mutable corpus's size.
///
/// `POST /corpus/docs` is remote-reachable; without a cap an add stream grows
/// index memory without limit. The largest seed corpus holds 2048 documents,
/// so 8192 leaves ample head-room for legitimate growth.
pub const MAX_CORPUS_DOCS: usize = 8192;

/// Retained report-cache depth per scenario, in distinct corpus versions.
///
/// Old versions are kept to serve [`Service::diff_reports`]; without a cap a
/// mutation stream (each followed by a report request) grows the cache
/// without limit.
pub const MAX_CACHED_VERSIONS: usize = 16;

fn corpus_full() -> ServiceError {
    ServiceError::InvalidArgument {
        reason: format!("corpus holds the maximum of {MAX_CORPUS_DOCS} documents"),
    }
}

/// Reject documents that could not round-trip through the corpus (empty ids
/// cannot be addressed for update/removal).
fn validate_document(doc: &Document) -> Result<(), ServiceError> {
    if doc.id.trim().is_empty() {
        return Err(ServiceError::InvalidArgument {
            reason: "document id must be non-empty".to_string(),
        });
    }
    Ok(())
}

/// `shards = Some(0)` is meaningless; `None` means "single index" (key 0);
/// counts beyond [`MAX_SHARDS`] are rejected before any resource is sized
/// from them.
fn validate_shards(shards: Option<usize>) -> Result<usize, ServiceError> {
    match shards {
        None => Ok(0),
        Some(0) => Err(ServiceError::InvalidArgument {
            reason: "shard count must be at least 1".to_string(),
        }),
        Some(n) if n > MAX_SHARDS => Err(ServiceError::InvalidArgument {
            reason: format!("shard count must be at most {MAX_SHARDS}, got {n}"),
        }),
        Some(n) => Ok(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_retrieval::Corpus;

    /// The provenance `Service` stamps on a fresh (version-1) scenario.
    fn seed_provenance(corpus: &Corpus) -> CorpusProvenance {
        CorpusProvenance {
            version: 1,
            fingerprint: corpus_fingerprint(corpus),
            num_docs: corpus.len(),
        }
    }

    #[test]
    fn render_matches_the_standalone_scenario_path() {
        // The service shares pipelines and prefix caches across requests;
        // none of that may change a single byte relative to the uncached
        // one-shot path the golden snapshots pin — except the corpus
        // provenance stamp, which only the service adds (and which the
        // library path leaves `None` so the goldens stay stable).
        let service = Service::new();
        for name in ["us_open", "adversarial"] {
            let scenario = scenarios::scenario_by_name(name).unwrap();
            let mut oracle = scenarios::report_for(&scenario, &ReportConfig::default()).unwrap();
            assert!(oracle.corpus.is_none(), "{name}: library path is unstamped");
            oracle.corpus = Some(seed_provenance(&scenario.corpus));
            let via_service = service.report(name, None).unwrap();
            assert_eq!(*via_service, oracle, "{name}");
            assert_eq!(
                service
                    .render_report(name, ReportFormat::Json, None)
                    .unwrap(),
                to_json(&oracle).render(),
                "{name} json"
            );
            assert_eq!(
                service
                    .render_report(name, ReportFormat::Markdown, None)
                    .unwrap(),
                render_markdown(&oracle),
                "{name} md"
            );
        }
    }

    #[test]
    fn sharded_render_is_equal_and_cached_separately() {
        let service = Service::new();
        let single = service
            .render_report("us_open", ReportFormat::Json, None)
            .unwrap();
        let sharded = service
            .render_report("us_open", ReportFormat::Json, Some(3))
            .unwrap();
        assert_eq!(single, sharded);
        // Two distinct cache entries (different runtimes), both misses.
        assert_eq!(service.report_cache_stats().misses, 2);
    }

    #[test]
    fn reports_are_memoised() {
        let service = Service::new();
        let first = service.report("us_open", None).unwrap();
        let second = service.report("us_open", None).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call must be a cache hit"
        );
        let stats = service.report_cache_stats();
        assert_eq!(stats, ReportCacheStats { hits: 1, misses: 1 });
        // All three formats render off the same memoised report.
        service
            .render_report("us_open", ReportFormat::Html, None)
            .unwrap();
        service
            .render_report("us-open", ReportFormat::Markdown, None)
            .unwrap();
        assert_eq!(service.report_cache_stats().hits, 3);
    }

    #[test]
    fn corpus_mutation_invalidates_reports_but_not_other_scenarios() {
        // Regression for the stale-cache bug: before corpus versions joined
        // the report key, a mutation kept serving the pre-mutation bytes.
        let service = Service::new();
        let before = service.report("us_open", None).unwrap();
        service.report("big_three", None).unwrap();
        assert_eq!(
            service.report_cache_stats(),
            ReportCacheStats { hits: 0, misses: 2 }
        );

        let provenance = service
            .add_document(
                "us_open",
                Document::new(
                    "us-open-2024",
                    "US Open 2024",
                    "Aryna Sabalenka was crowned US Open women's singles champion in 2024, \
                     her most recent major title in New York.",
                ),
            )
            .unwrap();
        assert_eq!(provenance.version, 2);
        assert_eq!(provenance.num_docs, before.corpus.unwrap().num_docs + 1);
        assert_ne!(provenance.fingerprint, before.corpus.unwrap().fingerprint);

        // The mutated scenario misses (new version, new bytes) …
        let after = service.report("us_open", None).unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.corpus.unwrap(), provenance);
        assert_ne!(
            to_json(&before).render(),
            to_json(&after).render(),
            "mutation must change the served bytes"
        );
        // … while the untouched scenario still hits its cache.
        let untouched = service.report("big_three", None).unwrap();
        assert_eq!(untouched.corpus.unwrap().version, 1);
        assert_eq!(
            service.report_cache_stats(),
            ReportCacheStats { hits: 1, misses: 3 }
        );
    }

    #[test]
    fn mutation_conflicts_and_unknown_ids_are_typed() {
        let service = Service::new();
        service
            .add_document("us_open", Document::new("fresh", "", "a fresh source"))
            .unwrap();

        // A duplicate strict add is a 409-class conflict, not a panic …
        let err = service
            .add_document("us_open", Document::new("fresh", "", "again"))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Conflict);
        assert!(err.to_string().contains("fresh"), "{err}");
        // … and the failed mutation must not move the version.
        assert_eq!(service.corpus_provenance("us_open").unwrap().version, 2);

        let err = service.remove_document("us_open", "absent").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        let err = service
            .update_document("us_open", Document::new("absent", "", "x"))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        let err = service
            .add_document("us_open", Document::new("   ", "", "no id"))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);
        assert_eq!(service.corpus_provenance("us_open").unwrap().version, 2);

        // Upsert resolves the conflict (replace) and keeps counting.
        let provenance = service
            .upsert_document("us_open", Document::new("fresh", "", "replaced"))
            .unwrap();
        assert_eq!(provenance.version, 3);
    }

    #[test]
    fn mutated_corpus_reports_equal_a_from_scratch_oracle() {
        // The acceptance bar: after any mutation sequence, the served report
        // is byte-identical to rebuilding everything from the mutated corpus
        // — across every runtime (single and sharded) of the scenario.
        let service = Service::new();
        // Materialise both runtimes *before* mutating so the mutations go
        // through the incremental path, not a fresh build.
        service.report("us_open", None).unwrap();
        service.report("us_open", Some(3)).unwrap();

        let added = Document::new(
            "us-open-2024",
            "US Open 2024",
            "Aryna Sabalenka was crowned US Open women's singles champion in 2024.",
        );
        let updated = Document::new(
            "us-open-2020",
            "US Open 2020",
            "Naomi Osaka was crowned US Open women's singles champion in 2020 in an empty \
             stadium in New York.",
        )
        .with_field("year", "2020")
        .with_field("champion", "Naomi Osaka");
        service.add_document("us_open", added.clone()).unwrap();
        service.update_document("us_open", updated.clone()).unwrap();
        let provenance = service.remove_document("us_open", "us-open-2019").unwrap();
        assert_eq!(provenance.version, 4);

        // Mirror the same mutations onto a fresh scenario corpus.
        let mut scenario = scenarios::scenario_by_name("us_open").unwrap();
        scenario.corpus.push(added);
        scenario.corpus.replace(updated).unwrap();
        scenario.corpus.remove("us-open-2019").unwrap();
        let mut oracle = scenarios::report_for(&scenario, &ReportConfig::default()).unwrap();
        oracle.corpus = Some(CorpusProvenance {
            version: 4,
            fingerprint: corpus_fingerprint(&scenario.corpus),
            num_docs: scenario.corpus.len(),
        });
        assert_eq!(oracle.corpus.unwrap(), provenance);

        let expected = to_json(&oracle).render();
        assert_eq!(
            service
                .render_report("us_open", ReportFormat::Json, None)
                .unwrap(),
            expected,
            "single-index runtime"
        );
        assert_eq!(
            service
                .render_report("us_open", ReportFormat::Json, Some(3))
                .unwrap(),
            expected,
            "3-shard runtime"
        );
    }

    #[test]
    fn live_updates_script_moves_the_answer_at_every_step() {
        // The live_updates scenario ships its own mutation script; replaying
        // it through the service must move the grounded answer exactly as the
        // script declares — proof that mutations reach the runtimes and that
        // no step serves a stale cached report.
        use rage_datasets::live_updates;

        let service = Service::new();
        let seed = service.report("live_updates", None).unwrap();
        assert_eq!(seed.full_context_answer, "Qinwen Zheng");
        assert_eq!(seed.corpus.unwrap().version, 1);

        let mut previous = seed;
        for (step_no, step) in live_updates::mutation_script().into_iter().enumerate() {
            let provenance = match step.mutation {
                live_updates::Mutation::Add(doc) => {
                    service.add_document("live_updates", doc).unwrap()
                }
                live_updates::Mutation::Update(doc) => {
                    service.update_document("live_updates", doc).unwrap()
                }
                live_updates::Mutation::Remove(id) => {
                    service.remove_document("live_updates", &id).unwrap()
                }
            };
            assert_eq!(provenance.version, step_no as u64 + 2, "{}", step.note);

            let report = service.report("live_updates", None).unwrap();
            assert!(!Arc::ptr_eq(&previous, &report), "{}", step.note);
            assert_eq!(
                report.full_context_answer, step.expected_answer,
                "{}",
                step.note
            );
            assert_eq!(report.corpus.unwrap(), provenance, "{}", step.note);
            previous = report;
        }

        // The retraction restores the seed document set: same fingerprint,
        // later version — and the version keeps the cache keys distinct.
        let final_provenance = service.corpus_provenance("live_updates").unwrap();
        assert_eq!(
            final_provenance.fingerprint,
            service
                .report("live_updates", None)
                .unwrap()
                .corpus
                .unwrap()
                .fingerprint
        );
        assert_eq!(
            final_provenance.fingerprint,
            corpus_fingerprint(&live_updates::corpus())
        );
        assert_eq!(final_provenance.version, 4);
    }

    #[test]
    fn diff_reports_span_cached_versions() {
        let service = Service::new();
        service.report("us_open", None).unwrap(); // caches version 1
        service
            .add_document(
                "us_open",
                Document::new(
                    "us-open-2024",
                    "US Open 2024",
                    "Aryna Sabalenka was crowned US Open women's singles champion in 2024, \
                     the most recent winner in New York.",
                ),
            )
            .unwrap();
        service.report("us_open", None).unwrap(); // caches version 2

        let d = service.diff_reports("us_open", 1, 2, None).unwrap();
        assert!(
            !d.is_empty(),
            "adding a highly relevant document must change the report"
        );
        let identical = service.diff_reports("us_open", 2, 2, None).unwrap();
        assert!(identical.is_empty());

        // A version nobody cached a report for is a typed 404.
        let err = service.diff_reports("us_open", 7, 1, None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        assert!(err.to_string().contains("version 7"), "{err}");
    }

    #[test]
    fn ask_answers_custom_queries_against_scenario_corpora() {
        use rage_retrieval::{IndexBuilder, Searcher};
        let service = Service::new();
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        let response = service.ask("us_open", &scenario.question, None).unwrap();
        assert!(!response.answer().is_empty());
        // The service's answer equals a freshly wired pipeline's answer.
        let oracle = {
            let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
            let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
            RagPipeline::new(searcher, Arc::new(llm))
                .ask(&scenario.question, scenario.retrieval_k)
                .unwrap()
        };
        assert_eq!(response, oracle);
    }

    #[test]
    fn ask_many_matches_element_wise_ask() {
        let service = Service::new();
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        let queries = [scenario.question.as_str(), "who won the US Open final"];
        let batched = service.ask_many("us_open", &queries, Some(3)).unwrap();
        assert_eq!(batched.len(), 2);
        for (query, result) in queries.iter().zip(batched) {
            let direct = service.ask("us_open", query, Some(3)).unwrap();
            assert_eq!(result.unwrap(), direct);
        }
    }

    #[test]
    fn error_taxonomy_classifies_client_errors() {
        let service = Service::new();
        let err = service.report("nope", None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        assert!(err.to_string().contains("us_open"), "{err}");

        let err = ReportFormat::parse("yaml").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        let err = service.report("us_open", Some(0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        // Shard counts beyond the cap are rejected before any partition or
        // thread is sized from them (the parameter is remote-reachable).
        for huge in [MAX_SHARDS + 1, 999_999_999_999, usize::MAX] {
            let err = service.report("us_open", Some(huge)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::BadRequest, "shards={huge}");
            assert!(err.to_string().contains("at most"), "{err}");
        }
        assert!(service.report("us_open", Some(MAX_SHARDS)).is_ok());

        let err = service.ask("us_open", "question", Some(0)).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidArgument { .. }), "{err}");
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        // An empty query is a client error, not an engine failure.
        let err = service.ask("us_open", "???", None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadRequest);

        // A well-formed query matching nothing is "no results".
        let err = service
            .ask("us_open", "quantum chromodynamics flux capacitor", None)
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NoResults);
    }

    #[test]
    fn anytime_reports_are_cached_apart_from_exact_ones() {
        let service = Service::new();
        let exact = service.report("us_open", None).unwrap();
        assert!(exact.all_sections_exact());

        // A zero deadline is already expired when generation starts: the
        // report still comes back (bounded), explicitly marked inexact.
        let anytime = service
            .report_with_deadline("us_open", None, Some(0))
            .unwrap();
        assert!(!anytime.all_sections_exact());
        assert!(!Arc::ptr_eq(&exact, &anytime));

        // Neither request displaced the other's cache entry.
        let exact_again = service.report("us_open", None).unwrap();
        assert!(Arc::ptr_eq(&exact, &exact_again));
        assert!(exact_again.all_sections_exact());
        let anytime_again = service
            .report_with_deadline("us_open", None, Some(0))
            .unwrap();
        assert!(Arc::ptr_eq(&anytime, &anytime_again));

        // A generous deadline completes every search and matches the exact
        // report section for section.
        let generous = service
            .report_with_deadline("us_open", None, Some(600_000))
            .unwrap();
        assert!(generous.all_sections_exact());
        assert_eq!(
            generous.full_context_answer, exact.full_context_answer,
            "a deadline that never fires must not change the answer"
        );
    }

    #[test]
    fn scenario_list_mirrors_the_registry() {
        let service = Service::new();
        let list = service.scenario_list();
        assert_eq!(list.len(), service.registry().len());
        assert!(list.iter().any(|(name, _)| *name == "us_open"));
        assert!(list.iter().all(|(_, summary)| !summary.is_empty()));
    }
}
