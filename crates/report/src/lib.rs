//! # rage-report
//!
//! Rendering of [`RageReport`]s for humans — the textual counterpart of the
//! demonstration UI the paper describes (§III). The current output format is
//! markdown; structured (JSON) output and diffable multi-report comparisons
//! are roadmap items.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use rage_core::counterfactual::SearchDirection;
use rage_core::RageReport;

/// Render a full explanation report as markdown.
///
/// Sections mirror the paper's demonstration panels: answer provenance,
/// counterfactual citations, order sensitivity, optimal placements and
/// perturbation insights, closed by the evaluation-cost footer.
pub fn render_markdown(report: &RageReport) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# RAGE explanation\n");
    let _ = writeln!(md, "**Question.** {}\n", report.question);
    let _ = writeln!(md, "**Answer.** {}\n", report.full_context_answer);
    let _ = writeln!(
        md,
        "**Answer without context.** {}\n",
        report.empty_context_answer
    );

    let _ = writeln!(md, "## Retrieved context\n");
    let _ = writeln!(md, "| # | source | retrieval score | relevance |");
    let _ = writeln!(md, "|---|--------|-----------------|-----------|");
    for (i, source) in report.context.sources.iter().enumerate() {
        let relevance = report.source_scores.get(i).copied().unwrap_or(0.0);
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {:.3} |",
            i + 1,
            source.doc_id,
            source.retrieval_score,
            relevance
        );
    }
    md.push('\n');

    let _ = writeln!(md, "## Counterfactual citations\n");
    match &report.top_down.counterfactual {
        Some(cf) => {
            let _ = writeln!(
                md,
                "Removing {{{}}} changes the answer to **{}** \
                 (found after {} evaluations).",
                report.citations().join(", "),
                cf.answer,
                report.top_down.stats.candidates
            );
        }
        None => {
            let _ = writeln!(
                md,
                "No removal within budget changes the answer ({} evaluations).",
                report.top_down.stats.candidates
            );
        }
    }
    match &report.bottom_up.counterfactual {
        Some(cf) => {
            let ids = report
                .context
                .doc_ids(cf.cited_positions(SearchDirection::BottomUp));
            let _ = writeln!(
                md,
                "Retaining only {{{}}} already changes the no-context answer to **{}**.",
                ids.join(", "),
                cf.answer
            );
        }
        None => {
            let _ = writeln!(
                md,
                "No retained subset within budget changes the no-context answer."
            );
        }
    }
    md.push('\n');

    let _ = writeln!(md, "## Order sensitivity\n");
    match &report.permutation.counterfactual {
        Some(cf) => {
            let _ = writeln!(
                md,
                "Re-ordering the context (Kendall tau {:.2}) flips the answer to **{}**.",
                cf.tau, cf.answer
            );
        }
        None => {
            let _ = writeln!(
                md,
                "The answer is stable under the {} most similar re-orderings tested.",
                report.permutation.stats.candidates
            );
        }
    }
    md.push('\n');

    if !report.best_orders.is_empty() {
        let _ = writeln!(md, "## Optimal placements\n");
        let _ = writeln!(md, "| rank | order (doc ids) | objective | answer |");
        let _ = writeln!(md, "|------|-----------------|-----------|--------|");
        for (rank, op) in report.best_orders.iter().enumerate() {
            let ids = report.context.doc_ids(&op.order);
            let _ = writeln!(
                md,
                "| {} | {} | {:.3} | {} |",
                rank + 1,
                ids.join(" → "),
                op.objective,
                op.answer
            );
        }
        if let Some(worst) = report.worst_orders.first() {
            let ids = report.context.doc_ids(&worst.order);
            let _ = writeln!(
                md,
                "\nWorst placement: {} (objective {:.3}) → {}.",
                ids.join(" → "),
                worst.objective,
                worst.answer
            );
        }
        md.push('\n');
    }

    let _ = writeln!(
        md,
        "## Insights over {} sampled orders\n",
        report.insights.num_samples
    );
    let _ = writeln!(md, "| answer | share |");
    let _ = writeln!(md, "|--------|-------|");
    for entry in &report.insights.distribution.entries {
        let _ = writeln!(md, "| {} | {:.0}% |", entry.answer, entry.share * 100.0);
    }
    if !report.insights.rules.is_empty() {
        let _ = writeln!(md, "\nRules:");
        for rule in &report.insights.rules {
            let _ = writeln!(
                md,
                "- when `{}` is {} the answer is **{}** \
                 (confidence {:.0}%, support {:.0}%)",
                rule.doc_id,
                if rule.present { "present" } else { "absent" },
                rule.answer,
                rule.confidence * 100.0,
                rule.support * 100.0
            );
        }
    }
    md.push('\n');

    let _ = writeln!(
        md,
        "---\n\n*{} distinct perturbations evaluated, {} LLM inferences.*",
        report.evaluations, report.llm_calls
    );
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_core::explanation::ReportConfig;
    use rage_core::RagPipeline;
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{IndexBuilder, Searcher};
    use std::sync::Arc;

    fn us_open_report() -> RageReport {
        let scenario = rage_datasets::us_open::scenario();
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
        let pipeline = RagPipeline::new(searcher, Arc::new(llm));
        let (_, evaluator) = pipeline
            .ask_and_explain(&scenario.question, scenario.retrieval_k)
            .unwrap();
        RageReport::generate(&evaluator, &ReportConfig::default()).unwrap()
    }

    #[test]
    fn markdown_contains_every_section() {
        let md = render_markdown(&us_open_report());
        for heading in [
            "# RAGE explanation",
            "## Retrieved context",
            "## Counterfactual citations",
            "## Order sensitivity",
            "## Optimal placements",
            "## Insights over",
        ] {
            assert!(md.contains(heading), "missing {heading:?} in:\n{md}");
        }
        assert!(md.contains("**Answer.** Coco Gauff"));
        assert!(md.contains("LLM inferences"));
    }

    #[test]
    fn markdown_tables_have_one_row_per_source_and_answer() {
        let report = us_open_report();
        let md = render_markdown(&report);
        for source in &report.context.sources {
            assert!(
                md.contains(&format!("| {} |", source.doc_id)),
                "{}",
                source.doc_id
            );
        }
        for entry in &report.insights.distribution.entries {
            assert!(md.contains(&entry.answer));
        }
    }
}
