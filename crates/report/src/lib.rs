//! # rage-report
//!
//! Rendering, structured serialization and diffing of [`RageReport`]s — the
//! textual and machine-readable counterparts of the demonstration UI the
//! paper describes (§III).
//!
//! Three renderers cover the same six demonstration panels (answer
//! provenance, counterfactual citations, order sensitivity, optimal
//! placements, perturbation insights, evaluation cost):
//!
//! * [`render_markdown`] — human-readable markdown;
//! * [`to_json`] — the versioned structured format (schema below), with
//!   [`from_json`] for lossless round-tripping;
//! * [`render_html`] — a single self-contained HTML page (inline CSS, no
//!   external assets) mirroring the paper's demo layout.
//!
//! Two reports can be compared with [`diff`], which produces a [`ReportDiff`]
//! (answer flips, citation-set deltas, rule churn, evaluation-cost deltas)
//! with markdown and JSON renderings of its own.
//!
//! ## JSON schema (version 2)
//!
//! [`to_json`] emits one object with `"schema_version": 2` and
//! `"kind": "rage-report"`. All numbers are JSON numbers (integers render
//! without a decimal point); every field of the in-memory [`RageReport`] is
//! covered, so `from_json(to_json(r)) == r` exactly:
//!
//! ```text
//! {
//!   "schema_version": 2,
//!   "kind": "rage-report",
//!   "question": str,
//!   "answers": {"full_context": str, "empty_context": str},
//!   "context": {"query": str, "sources": [
//!       {"doc_id": str, "title": str, "text": str,
//!        "rank": int, "retrieval_score": num}]},
//!   "source_scores": [num],
//!   "counterfactuals": {
//!     "top_down":  {"counterfactual": null | {"removed": [int], "kept": [int],
//!                    "baseline_answer": str, "answer": str},
//!                   "exhausted_budget": bool,
//!                   "stats": {"candidates": int, "llm_calls": int}},
//!     "bottom_up": <same shape as top_down>
//!   },
//!   "permutation": {"counterfactual": null | {"order": [int], "tau": num,
//!                    "baseline_answer": str, "answer": str},
//!                   "exhausted_budget": bool, "stats": {...}},
//!   "best_orders":  [{"order": [int], "objective": num, "answer": str, "tau": num}],
//!   "worst_orders": [<same shape>],
//!   "insights": {
//!     "num_samples": int,
//!     "distribution": {"total": int, "entries": [
//!         {"answer": str, "normalized": str, "count": int, "share": num,
//!          "interval"?: {"lower": num, "upper": num}}]},
//!     "table": {"rows": [{"source": int, "doc_id": str, "present_in": int,
//!         "cells": [{"answer": str, "present": int, "out_of": int,
//!                    "mean_position": num | null}]}]},
//!     "rules": [{"source": int, "doc_id": str, "present": bool, "answer": str,
//!                "support": num, "confidence": num}],
//!     "stats": {"candidates": int, "llm_calls": int}
//!   },
//!   "cost": {"evaluations": int, "llm_calls": int, "permutation_budget": int},
//!   "completeness"?: {                  // only when any section is inexact
//!     "top_down":    <marker>, "bottom_up": <marker>,
//!     "permutation": <marker>, "placements": <marker>, "insights": <marker>
//!   }
//! }
//!
//! <marker> := {"kind": "exact"}
//!           | {"kind": "budget_truncated", "evaluated": int, "pruned": int}
//!           | {"kind": "deadline_truncated", "elapsed_ms": int}
//! ```
//!
//! Version 2 adds to version 1: `cost.permutation_budget` (the effective
//! permutation search budget), per-entry `interval` confidence bounds on the
//! insights distribution when the sample was truncated, and the optional
//! top-level `completeness` block carrying each section's
//! [`rage_core::Completeness`] marker when an anytime deadline or pruning
//! made any section inexact. Exhaustive (default) reports omit the block —
//! their markers are derivable from each section's `exhausted_budget` flag,
//! which is how v1 documents decode: [`from_json`] still accepts
//! `schema_version: 1`, deriving `Exact` markers everywhere, empty intervals,
//! and reconstructing the permutation budget from the evaluated count (when
//! the budget was exhausted) or the engine default.
//!
//! The version is bumped whenever a field is renamed, removed or changes
//! meaning; adding fields is backwards-compatible within a version.
//! [`from_json`] rejects documents whose `schema_version` is outside
//! `[MIN_SCHEMA_VERSION, SCHEMA_VERSION]`.
//!
//! ## Command line
//!
//! The crate ships a `report` binary; scenario names come from the shared
//! [`rage_datasets::ScenarioRegistry`] (see [`scenarios`]):
//!
//! ```text
//! report --scenario <name> --format <md|json|html> \
//!        [--out PATH] [--shards N] [--anytime MS] # render one scenario
//! report --list-scenarios                        # registry names + summaries
//! report diff A.json B.json [--format <md|json>] # compare two saved reports
//! report smoke                                   # whole registry × formats +
//!                                                # round-trip checks (CI)
//! ```
//!
//! `--shards N` retrieves through an N-way sharded index; the rendered report
//! is equal to the single-index one for every shard count (pinned by
//! `tests/sharded.rs`). `--anytime MS` bounds the whole explanation by a
//! wall-clock deadline; truncated sections carry non-`Exact` completeness
//! markers in the rendered output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use rage_core::counterfactual::SearchDirection;
use rage_core::RageReport;

mod diff;
mod html;
mod json;
pub mod scenarios;
pub mod service;

pub use diff::{diff, ReportDiff};
pub use html::render_html;
pub use json::{from_json, to_json, ReportJsonError, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
pub use service::{ReportCacheStats, ReportFormat, Service, ServiceError, MAX_SHARDS};
// Re-exported so Service callers (the HTTP server above all) can build the
// documents they feed the corpus-mutation API without a direct dependency on
// the retrieval crate.
pub use rage_retrieval::Document;

/// Escape a value for use inside a markdown table cell.
///
/// `|` would end the cell and a raw newline would end the row, so both are
/// escaped (`\|`, `<br>`); `\r` is dropped and surrounding whitespace is
/// trimmed so hostile doc ids or answers cannot corrupt the table layout.
pub(crate) fn escape_cell(value: &str) -> String {
    let trimmed = value.trim();
    let mut out = String::with_capacity(trimmed.len());
    for ch in trimmed.chars() {
        match ch {
            '|' => out.push_str("\\|"),
            '\n' => out.push_str("<br>"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Format a share in `[0, 1]` as a percentage with one decimal.
///
/// Tiny non-zero shares print as `<0.1%` instead of rounding to a misleading
/// `0.0%`.
pub(crate) fn format_share(share: f64) -> String {
    let pct = share * 100.0;
    if pct > 0.0 && pct < 0.1 {
        "<0.1%".to_string()
    } else {
        format!("{pct:.1}%")
    }
}

/// Render a full explanation report as markdown.
///
/// Sections mirror the paper's demonstration panels: answer provenance,
/// counterfactual citations, order sensitivity, optimal placements and
/// perturbation insights, closed by the evaluation-cost footer. Table cells
/// are escaped, so doc ids and answers containing `|` or newlines render
/// safely.
pub fn render_markdown(report: &RageReport) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# RAGE explanation\n");
    let _ = writeln!(md, "**Question.** {}\n", report.question);
    let _ = writeln!(md, "**Answer.** {}\n", report.full_context_answer);
    let _ = writeln!(
        md,
        "**Answer without context.** {}\n",
        report.empty_context_answer
    );

    let _ = writeln!(md, "## Retrieved context\n");
    let _ = writeln!(md, "| # | source | retrieval score | relevance |");
    let _ = writeln!(md, "|---|--------|-----------------|-----------|");
    for (i, source) in report.context.sources.iter().enumerate() {
        // A missing relevance score is surfaced as n/a, not a silent 0.000.
        let relevance = match report.source_scores.get(i) {
            Some(score) => format!("{score:.3}"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {} |",
            i + 1,
            escape_cell(&source.doc_id),
            source.retrieval_score,
            relevance
        );
    }
    md.push('\n');

    let _ = writeln!(md, "## Counterfactual citations\n");
    match &report.top_down.counterfactual {
        Some(cf) => {
            let _ = writeln!(
                md,
                "Removing {{{}}} changes the answer to **{}** \
                 (found after {} evaluations).",
                report.citations().join(", "),
                cf.answer,
                report.top_down.stats.candidates
            );
        }
        None => {
            let _ = writeln!(
                md,
                "No removal within budget changes the answer ({} evaluations).",
                report.top_down.stats.candidates
            );
        }
    }
    match &report.bottom_up.counterfactual {
        Some(cf) => {
            let ids = report
                .context
                .doc_ids(cf.cited_positions(SearchDirection::BottomUp));
            let _ = writeln!(
                md,
                "Retaining only {{{}}} already changes the no-context answer to **{}**.",
                ids.join(", "),
                cf.answer
            );
        }
        None => {
            let _ = writeln!(
                md,
                "No retained subset within budget changes the no-context answer."
            );
        }
    }
    md.push('\n');

    let _ = writeln!(md, "## Order sensitivity\n");
    match &report.permutation.counterfactual {
        Some(cf) => {
            let _ = writeln!(
                md,
                "Re-ordering the context (Kendall tau {:.2}) flips the answer to **{}**.",
                cf.tau, cf.answer
            );
        }
        None => {
            let _ = writeln!(
                md,
                "The answer is stable under the {} most similar re-orderings tested.",
                report.permutation.stats.candidates
            );
        }
    }
    md.push('\n');

    if !report.best_orders.is_empty() {
        let _ = writeln!(md, "## Optimal placements\n");
        let _ = writeln!(md, "| rank | order (doc ids) | objective | answer |");
        let _ = writeln!(md, "|------|-----------------|-----------|--------|");
        for (rank, op) in report.best_orders.iter().enumerate() {
            let ids: Vec<String> = report
                .context
                .doc_ids(&op.order)
                .iter()
                .map(|id| escape_cell(id))
                .collect();
            let _ = writeln!(
                md,
                "| {} | {} | {:.3} | {} |",
                rank + 1,
                ids.join(" → "),
                op.objective,
                escape_cell(&op.answer)
            );
        }
        if let Some(worst) = report.worst_orders.first() {
            let ids: Vec<String> = report
                .context
                .doc_ids(&worst.order)
                .iter()
                .map(|id| escape_cell(id))
                .collect();
            let _ = writeln!(
                md,
                "\nWorst placement: {} (objective {:.3}) → {}.",
                ids.join(" → "),
                worst.objective,
                escape_cell(&worst.answer)
            );
        }
        md.push('\n');
    }

    let _ = writeln!(
        md,
        "## Insights over {} sampled orders\n",
        report.insights.num_samples
    );
    let _ = writeln!(md, "| answer | share |");
    let _ = writeln!(md, "|--------|-------|");
    for entry in &report.insights.distribution.entries {
        let _ = writeln!(
            md,
            "| {} | {} |",
            escape_cell(&entry.answer),
            format_share(entry.share)
        );
    }
    if !report.insights.rules.is_empty() {
        let _ = writeln!(md, "\nRules:");
        for rule in &report.insights.rules {
            let _ = writeln!(
                md,
                "- when `{}` is {} the answer is **{}** \
                 (confidence {}, support {})",
                escape_cell(&rule.doc_id),
                if rule.present { "present" } else { "absent" },
                escape_cell(&rule.answer),
                format_share(rule.confidence),
                format_share(rule.support)
            );
        }
    }
    md.push('\n');

    let _ = writeln!(
        md,
        "---\n\n*{} distinct perturbations evaluated, {} LLM inferences, \
         permutation budget {}.*",
        report.evaluations, report.llm_calls, report.permutation_budget
    );
    if !report.all_sections_exact() {
        let mut notes = Vec::new();
        for (name, marker) in [
            ("top-down", &report.top_down.completeness),
            ("bottom-up", &report.bottom_up.completeness),
            ("permutation", &report.permutation.completeness),
            ("placements", &report.placements_completeness),
            ("insights", &report.insights.completeness),
        ] {
            if !marker.is_exact() {
                notes.push(format!("{name}: {}", marker.describe()));
            }
        }
        let _ = writeln!(md, "\n*Truncated sections — {}.*", notes.join("; "));
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use rage_core::explanation::ReportConfig;
    use rage_core::{Context, Evaluator, RagPipeline};
    use rage_llm::model::{SimLlm, SimLlmConfig};
    use rage_retrieval::{Document, IndexBuilder, Searcher};
    use std::sync::Arc;

    fn us_open_report() -> RageReport {
        let scenario = rage_datasets::us_open::scenario();
        let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
        let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
        let pipeline = RagPipeline::new(searcher, Arc::new(llm));
        let (_, evaluator) = pipeline
            .ask_and_explain(&scenario.question, scenario.retrieval_k)
            .unwrap();
        RageReport::generate(&evaluator, &ReportConfig::default()).unwrap()
    }

    /// Answers a fixed string whenever any source is present — every sampled
    /// permutation then yields the same answer, so every source produces a
    /// confidence-1 presence rule (which is what the rule-escaping test
    /// needs).
    struct ConstantLlm;

    impl rage_llm::LanguageModel for ConstantLlm {
        fn generate(&self, input: &rage_llm::LlmInput) -> rage_llm::Generation {
            let answer = if input.sources.is_empty() {
                "nothing".to_string()
            } else {
                "Division Winner".to_string()
            };
            rage_llm::Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![1.0; input.sources.len()],
                prompt_tokens: 1,
            }
        }
    }

    /// A report over a hostile corpus whose ids and text carry markdown
    /// metacharacters, fed in directly (the `custom_corpus` path that
    /// bypasses retrieval).
    fn hostile_report() -> RageReport {
        let documents = [
            Document::new(
                "evil|pipe",
                "Pipe | title",
                "Alice Archer wins the | pipe division.",
            ),
            Document::new(
                "evil\nnewline",
                "Broken\nlines",
                "Boris Blake wins the newline division.",
            ),
            Document::new(
                "  padded  ",
                "Padded",
                "Clara Chen wins the padded division.",
            ),
        ];
        let context = Context::from_documents("Who wins the division?", &documents);
        let evaluator = Evaluator::new(Arc::new(ConstantLlm), context);
        RageReport::generate(&evaluator, &ReportConfig::default()).unwrap()
    }

    #[test]
    fn markdown_contains_every_section() {
        let md = render_markdown(&us_open_report());
        for heading in [
            "# RAGE explanation",
            "## Retrieved context",
            "## Counterfactual citations",
            "## Order sensitivity",
            "## Optimal placements",
            "## Insights over",
        ] {
            assert!(md.contains(heading), "missing {heading:?} in:\n{md}");
        }
        assert!(md.contains("**Answer.** Coco Gauff"));
        assert!(md.contains("LLM inferences"));
    }

    #[test]
    fn markdown_tables_have_one_row_per_source_and_answer() {
        let report = us_open_report();
        let md = render_markdown(&report);
        for source in &report.context.sources {
            assert!(
                md.contains(&format!("| {} |", source.doc_id)),
                "{}",
                source.doc_id
            );
        }
        for entry in &report.insights.distribution.entries {
            assert!(md.contains(&entry.answer));
        }
    }

    #[test]
    fn hostile_doc_ids_cannot_corrupt_tables() {
        // Regression: raw `|` / `\n` in doc ids used to split table cells.
        let report = hostile_report();
        let md = render_markdown(&report);
        assert!(md.contains("evil\\|pipe"), "pipe not escaped:\n{md}");
        assert!(md.contains("evil<br>newline"), "newline not escaped:\n{md}");
        // Every row of the context table has exactly the 4 columns the header
        // declares (5 separators).
        let context_rows: Vec<&str> = md
            .lines()
            .skip_while(|l| !l.starts_with("## Retrieved context"))
            .skip(2)
            .take_while(|l| l.starts_with('|'))
            .collect();
        assert!(context_rows.len() >= 2 + report.context.len());
        for row in context_rows {
            let unescaped_pipes = row
                .as_bytes()
                .iter()
                .enumerate()
                .filter(|&(i, &b)| b == b'|' && (i == 0 || row.as_bytes()[i - 1] != b'\\'))
                .count();
            assert_eq!(unescaped_pipes, 5, "malformed row {row:?}");
        }
        // Leading/trailing whitespace in ids is trimmed inside cells.
        assert!(md.contains("| padded |"), "padding not trimmed:\n{md}");
    }

    #[test]
    fn hostile_doc_ids_are_escaped_in_rules_and_worst_placement() {
        // With a constant answer every source yields a confidence-1 presence
        // rule, so the hostile ids reach the rules bullets and the worst-
        // placement line too.
        let report = hostile_report();
        assert!(!report.insights.rules.is_empty());
        let md = render_markdown(&report);
        assert!(
            md.lines().any(|l| l.contains("when `evil\\|pipe` is")),
            "pipe not escaped in rules:\n{md}"
        );
        assert!(
            md.lines().any(|l| l.contains("when `evil<br>newline` is")),
            "newline not escaped in rules:\n{md}"
        );
        let worst = md
            .lines()
            .find(|l| l.starts_with("Worst placement:"))
            .expect("worst placement line");
        assert!(worst.contains("evil<br>newline"), "{worst}");
    }

    #[test]
    fn shares_use_one_decimal_with_floor() {
        assert_eq!(format_share(0.004), "0.4%");
        assert_eq!(format_share(0.0004), "<0.1%");
        assert_eq!(format_share(0.0), "0.0%");
        assert_eq!(format_share(1.0), "100.0%");
        assert_eq!(format_share(2.0 / 3.0), "66.7%");
    }

    #[test]
    fn missing_source_scores_render_as_na() {
        let mut report = us_open_report();
        report.source_scores.truncate(1);
        let md = render_markdown(&report);
        assert!(md.contains("| n/a |"), "missing score not n/a:\n{md}");
    }
}
