//! The `report` command-line tool: render, save and compare RAGE explanation
//! reports over the demonstration scenarios.
//!
//! ```text
//! report --scenario <name> --format <md|json|html> [--out PATH] [--shards N]
//!        [--anytime MS]
//! report --list-scenarios
//! report diff A.json B.json [--format <md|json>]
//! report smoke
//! ```
//!
//! `report` (no subcommand) runs the full explanation pipeline over one
//! scenario and renders the result; with `--out` the rendering is written to
//! a file, otherwise it goes to stdout, and with `--shards N` retrieval runs
//! through an N-way [`rage_retrieval::ShardedSearcher`] (the report is equal
//! either way — sharding never changes results). `--anytime MS` bounds the
//! explanation searches by a wall-clock deadline of `MS` milliseconds:
//! whatever the searches completed is rendered, and sections the deadline cut
//! short carry explicit non-exact completeness markers (the JSON format's
//! `completeness` member, the markdown footer's anytime note). Scenario names
//! come from the
//! shared [`rage_datasets::ScenarioRegistry`]; `--list-scenarios` prints them
//! with their one-line summaries. `report diff` decodes two saved JSON
//! reports and prints their [`rage_report::ReportDiff`]. `report smoke` is
//! the CI entry point: it iterates the whole registry, renders every scenario
//! in all three formats, asserts the structured round-trip invariants
//! (`parse(render(to_json(r))) == to_json(r)` and `from_json(to_json(r)) == r`)
//! and, with `--out-dir DIR`, writes the renderings it computed as
//! `DIR/<scenario>.<md|json|html>` artifacts.

use std::process::ExitCode;

use rage_json::JsonValue;
use rage_report::scenarios::{self, scenario_names};
use rage_report::{diff, from_json, render_html, render_markdown, to_json, ReportFormat, Service};

fn usage() -> String {
    format!(
        "usage:\n  report --scenario <{}> --format <md|json|html> [--out PATH] [--shards N] \
         [--anytime MS]\n  \
         report --list-scenarios\n  \
         report diff <A.json> <B.json> [--format <md|json>]\n  \
         report smoke [--out-dir DIR]\n\
         \ndiff exits 0 when the reports are identical, 1 when they differ, \
         2 on errors.\n",
        scenario_names().join("|")
    )
}

/// `--list-scenarios`: names and one-line summaries straight from the registry.
fn list_scenarios() {
    let registry = scenarios::registry();
    let width = registry.names().iter().map(|n| n.len()).max().unwrap_or(0);
    for entry in registry.iter() {
        println!("{:width$}  {}", entry.name(), entry.summary());
    }
}

/// The value following `args[i]` (a `--flag value` pair).
fn take_value(args: &[String], i: usize, flag: &str) -> Result<String, String> {
    args.get(i + 1)
        .filter(|v| !v.starts_with("--"))
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn write_output(rendering: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            let mut content = rendering.to_string();
            if !content.ends_with('\n') {
                content.push('\n');
            }
            std::fs::write(path, content).map_err(|err| format!("cannot write {path}: {err}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            println!("{rendering}");
            Ok(())
        }
    }
}

fn render_scenario(args: &[String]) -> Result<(), String> {
    let mut scenario_name: Option<String> = None;
    let mut format = "md".to_string();
    let mut out: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut anytime_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                scenario_name = Some(take_value(args, i, "--scenario")?);
                i += 2;
            }
            "--format" => {
                format = take_value(args, i, "--format")?;
                i += 2;
            }
            "--out" => {
                out = Some(take_value(args, i, "--out")?);
                i += 2;
            }
            "--shards" => {
                let value = take_value(args, i, "--shards")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("--shards needs a positive integer, got {value:?}"))?;
                if parsed == 0 {
                    return Err("--shards needs a positive integer, got 0".to_string());
                }
                shards = Some(parsed);
                i += 2;
            }
            "--anytime" => {
                let value = take_value(args, i, "--anytime")?;
                let parsed: u64 = value.parse().map_err(|_| {
                    format!("--anytime needs a deadline in milliseconds, got {value:?}")
                })?;
                anytime_ms = Some(parsed);
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    let scenario_name =
        scenario_name.ok_or_else(|| format!("--scenario is required\n{}", usage()))?;

    // The CLI renders through the same Service layer the HTTP server serves
    // from, so `report --format json` and `GET /report?format=json` are
    // byte-identical by construction.
    let format = ReportFormat::parse(&format).map_err(|err| err.to_string())?;
    let rendering = Service::new()
        .render_report_with_deadline(&scenario_name, format, shards, anytime_ms)
        .map_err(|err| err.to_string())?;
    write_output(&rendering, out.as_deref())
}

fn read_report(path: &str) -> Result<rage_core::RageReport, String> {
    let raw = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let value = JsonValue::parse(&raw).map_err(|err| format!("{path}: invalid JSON: {err}"))?;
    from_json(&value).map_err(|err| format!("{path}: not a report document: {err}"))
}

fn run_diff(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut format = "md".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                format = take_value(args, i, "--format")?;
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let [path_a, path_b] = paths.as_slice() else {
        return Err(format!("diff needs exactly two files\n{}", usage()));
    };

    let report_diff = diff(&read_report(path_a)?, &read_report(path_b)?);
    match format.as_str() {
        "md" | "markdown" => println!("{}", report_diff.render_markdown()),
        "json" => println!("{}", report_diff.to_json().render()),
        other => return Err(format!("unknown format {other:?} (md|json)")),
    }
    Ok(report_diff.is_empty())
}

/// CI smoke: render every scenario in every format and assert the structured
/// round-trip invariants with the vendored parser. With `--out-dir DIR` the
/// renderings it already computed are also written as `DIR/<scenario>.<ext>`
/// artifacts, so CI does not have to re-run the explanation pipeline once per
/// format.
fn run_smoke(args: &[String]) -> Result<(), String> {
    let mut out_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out-dir" => {
                out_dir = Some(take_value(args, i, "--out-dir")?);
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|err| format!("cannot create {dir}: {err}"))?;
    }

    let service = Service::new();
    for name in scenario_names() {
        let report = service
            .report(name, None)
            .map_err(|err| format!("{name}: explanation failed: {err}"))?;

        let md = render_markdown(&report);
        if !md.contains("# RAGE explanation") {
            return Err(format!("{name}: markdown rendering lost its header"));
        }
        let html = render_html(&report);
        if !html.contains("panel-insights") {
            return Err(format!("{name}: html rendering lost its panels"));
        }

        let value = to_json(&report);
        let reparsed = JsonValue::parse(&value.render())
            .map_err(|err| format!("{name}: rendered JSON does not parse: {err}"))?;
        if reparsed != value {
            return Err(format!("{name}: parse(render(json)) != json"));
        }
        let decoded =
            from_json(&value).map_err(|err| format!("{name}: from_json failed: {err}"))?;
        if decoded != *report {
            return Err(format!("{name}: from_json(to_json(report)) != report"));
        }
        if let Some(dir) = &out_dir {
            for (ext, rendering) in [("md", &md), ("html", &html), ("json", &value.render())] {
                let path = format!("{dir}/{name}.{ext}");
                write_output(rendering, Some(&path))?;
            }
        }
        println!(
            "smoke ok: {name} (md {} bytes, html {} bytes, json {} bytes, answer {:?})",
            md.len(),
            html.len(),
            value.render().len(),
            report.full_context_answer
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        None | Some("--help" | "-h" | "help") => {
            print!("{}", usage());
            Ok(())
        }
        Some("--list-scenarios") => {
            list_scenarios();
            Ok(())
        }
        // GNU-diff-style exit codes so CI gates can trip on drift: 0 when the
        // reports are identical, 1 when they differ, 2 when the comparison
        // itself failed.
        Some("diff") => match run_diff(&args[1..]) {
            Ok(true) => return ExitCode::SUCCESS,
            Ok(false) => return ExitCode::from(1),
            Err(message) => {
                eprintln!("report: {message}");
                return ExitCode::from(2);
            }
        },
        Some("smoke") => run_smoke(&args[1..]),
        Some(_) => render_scenario(&args),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("report: {message}");
            ExitCode::FAILURE
        }
    }
}
