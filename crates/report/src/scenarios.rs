//! Demonstration-scenario plumbing shared by the `report` binary and tests.
//!
//! Maps the four scenario names the CLI accepts onto [`rage_datasets`]
//! generators and runs a full explanation over one of them with the standard
//! pipeline (BM25 retrieval + prior-seeded [`SimLlm`]), exactly like the
//! paper's demo backend.

use std::sync::Arc;

use rage_core::explanation::ReportConfig;
use rage_core::{RagPipeline, RageError, RageReport};
use rage_datasets::{big_three, synthetic, timeline, us_open, Scenario};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{IndexBuilder, Searcher};

/// The scenario names the CLI accepts, in presentation order.
pub const SCENARIO_NAMES: [&str; 4] = ["us_open", "big_three", "timeline", "synthetic"];

/// Look up a demonstration scenario by CLI name.
///
/// Accepts `-` and `_` interchangeably (`us-open` == `us_open`). `synthetic`
/// maps to the default seeded [`synthetic::ranking_scenario`]. Returns `None`
/// for unknown names.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    match name.replace('-', "_").as_str() {
        "us_open" => Some(us_open::scenario()),
        "big_three" => Some(big_three::scenario()),
        "timeline" => Some(timeline::scenario()),
        "synthetic" => Some(synthetic::ranking_scenario(
            synthetic::RankingConfig::default(),
        )),
        _ => None,
    }
}

/// Run the full RAGE explanation over a scenario and assemble its report.
///
/// Deterministic: the retrieval, the simulated LLM and the report's insight
/// sample are all seeded, so the same scenario and config always produce an
/// identical report (this is what the golden-snapshot tests pin).
pub fn report_for(scenario: &Scenario, config: &ReportConfig) -> Result<RageReport, RageError> {
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(searcher, Arc::new(llm));
    let (_, evaluator) = pipeline.ask_and_explain(&scenario.question, scenario.retrieval_k)?;
    RageReport::generate(&evaluator, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cli_name_resolves() {
        for name in SCENARIO_NAMES {
            assert!(scenario_by_name(name).is_some(), "{name}");
        }
        assert!(scenario_by_name("us-open").is_some());
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn reports_generate_for_every_scenario() {
        let config = ReportConfig {
            insight_samples: 4,
            permutation_budget: Some(16),
            ..ReportConfig::default()
        };
        for name in SCENARIO_NAMES {
            let scenario = scenario_by_name(name).unwrap();
            let report = report_for(&scenario, &config).unwrap();
            assert!(!report.full_context_answer.is_empty(), "{name}");
        }
    }
}
