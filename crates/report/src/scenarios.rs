//! Demonstration-scenario plumbing shared by the `report` binary and tests.
//!
//! All scenario wiring is registry-driven: the shared
//! [`ScenarioRegistry`](rage_datasets::ScenarioRegistry) (see [`registry`]) maps CLI
//! names onto [`rage_datasets`] generators with their metadata, so the binary, the
//! smoke job and the golden tests enumerate one source of truth instead of a hardcoded
//! list. [`report_for`] runs a full explanation over a scenario with the standard
//! pipeline (BM25 retrieval + prior-seeded [`SimLlm`]), exactly like the paper's demo
//! backend; [`report_for_sharded`] does the same through partitioned retrieval and —
//! because sharded rankings are identical to single-index ones — produces an *equal*
//! report, which `tests/sharded.rs` pins.

use std::sync::Arc;
use std::sync::OnceLock;

use rage_core::explanation::ReportConfig;
use rage_core::{RagPipeline, RageError, RageReport};
use rage_datasets::{Scenario, ScenarioRegistry};
use rage_llm::model::{SimLlm, SimLlmConfig};
use rage_retrieval::{IndexBuilder, Retriever, Searcher, ShardedSearcher};

/// The shared scenario registry (built once, in presentation order).
pub fn registry() -> &'static ScenarioRegistry {
    static REGISTRY: OnceLock<ScenarioRegistry> = OnceLock::new();
    REGISTRY.get_or_init(ScenarioRegistry::builtin)
}

/// The scenario names the CLI accepts, in presentation order.
pub fn scenario_names() -> Vec<&'static str> {
    registry().names()
}

/// Look up a demonstration scenario by CLI name.
///
/// Accepts `-` and `_` interchangeably (`us-open` == `us_open`). Returns `None` for
/// unknown names; the registry's [`names`](ScenarioRegistry::names) make a good
/// suggestion list in that case.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    registry().build(name)
}

/// Run the full RAGE explanation over a scenario through any retrieval backend.
///
/// This is the generic engine behind [`report_for`] and [`report_for_sharded`]; the
/// backend only influences retrieval, so two backends with identical rankings yield
/// equal reports.
pub fn report_with_retriever<R: Retriever>(
    scenario: &Scenario,
    config: &ReportConfig,
    retriever: R,
) -> Result<RageReport, RageError> {
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(retriever, Arc::new(llm));
    let (_, evaluator) = pipeline.ask_and_explain(&scenario.question, scenario.retrieval_k)?;
    RageReport::generate(&evaluator, config)
}

/// Run the full RAGE explanation over a scenario and assemble its report.
///
/// Deterministic: the retrieval, the simulated LLM and the report's insight
/// sample are all seeded, so the same scenario and config always produce an
/// identical report (this is what the golden-snapshot tests pin).
pub fn report_for(scenario: &Scenario, config: &ReportConfig) -> Result<RageReport, RageError> {
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    report_with_retriever(scenario, config, searcher)
}

/// Like [`report_for`], but retrieving through a [`ShardedSearcher`] over
/// `num_shards` partitions.
///
/// Sharded retrieval returns bit-identical scores and identical orderings to the
/// single index, so the resulting report is equal to [`report_for`]'s for every shard
/// count — sharding is a deployment decision, not a behaviour change.
pub fn report_for_sharded(
    scenario: &Scenario,
    config: &ReportConfig,
    num_shards: usize,
) -> Result<RageReport, RageError> {
    let searcher = ShardedSearcher::from_corpus(&scenario.corpus, num_shards);
    report_with_retriever(scenario, config, searcher)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cli_name_resolves() {
        for name in scenario_names() {
            assert!(scenario_by_name(name).is_some(), "{name}");
        }
        assert!(scenario_by_name("us-open").is_some());
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn registry_lists_old_and_new_scenarios() {
        let names = scenario_names();
        for expected in [
            "us_open",
            "big_three",
            "timeline",
            "synthetic",
            "large_corpus",
            "multi_hop",
            "adversarial",
        ] {
            assert!(
                names.contains(&expected),
                "{expected} missing from registry"
            );
        }
    }

    #[test]
    fn reports_generate_for_every_scenario() {
        let config = ReportConfig {
            insight_samples: 4,
            permutation_budget: Some(16),
            ..ReportConfig::default()
        };
        for name in scenario_names() {
            let scenario = scenario_by_name(name).unwrap();
            let report = report_for(&scenario, &config).unwrap();
            assert!(!report.full_context_answer.is_empty(), "{name}");
        }
    }

    #[test]
    fn sharded_report_equals_single_index_report() {
        let config = ReportConfig {
            insight_samples: 4,
            permutation_budget: Some(16),
            ..ReportConfig::default()
        };
        let scenario = scenario_by_name("us_open").unwrap();
        let single = report_for(&scenario, &config).unwrap();
        let sharded = report_for_sharded(&scenario, &config, 3).unwrap();
        assert_eq!(single, sharded);
    }
}
