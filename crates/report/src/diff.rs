//! Diffing two explanation reports.
//!
//! [`diff`] compares two [`RageReport`]s — typically two CI artifacts of the
//! same scenario at different commits, or the same question over two corpus
//! revisions — and reduces the comparison to the facts a reviewer cares
//! about: did any answer flip, did the citation set change, which insight
//! rules appeared or disappeared, and how did the evaluation cost move.
//! [`ReportDiff`] renders as markdown ([`ReportDiff::render_markdown`]) and
//! as JSON ([`ReportDiff::to_json`]).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use rage_core::RageReport;
use rage_json::JsonValue;

use crate::escape_cell;

/// A `(before, after)` pair of values that differ between two reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flip {
    /// The value in the first (baseline) report.
    pub before: String,
    /// The value in the second report.
    pub after: String,
}

/// The structured comparison of two reports, produced by [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Set when the two reports explain different questions (the rest of the
    /// diff is still computed, but usually only cost deltas are meaningful).
    pub question_changed: Option<Flip>,
    /// Set when the full-context answer differs.
    pub answer_flip: Option<Flip>,
    /// Set when the empty-context (prior) answer differs.
    pub empty_answer_flip: Option<Flip>,
    /// Doc ids retrieved in the second report but not the first.
    pub context_added: Vec<String>,
    /// Doc ids retrieved in the first report but not the second.
    pub context_removed: Vec<String>,
    /// Cited doc ids (top-down counterfactual) gained by the second report.
    pub citations_added: Vec<String>,
    /// Cited doc ids lost by the second report.
    pub citations_removed: Vec<String>,
    /// Set when order sensitivity appeared or disappeared
    /// (`before`/`after` are `"order-sensitive"` / `"order-stable"`).
    pub order_sensitivity_changed: Option<Flip>,
    /// Insight rules present only in the second report, rendered as
    /// `"<doc_id> present → <answer>"` keys.
    pub rules_added: Vec<String>,
    /// Insight rules present only in the first report.
    pub rules_removed: Vec<String>,
    /// Set when one report is exhaustive and the other was truncated by a
    /// budget or deadline (`before`/`after` are `"exact"` / `"truncated"`).
    pub completeness_changed: Option<Flip>,
    /// `b.evaluations - a.evaluations`.
    pub evaluations_delta: i64,
    /// `b.llm_calls - a.llm_calls`.
    pub llm_calls_delta: i64,
}

impl ReportDiff {
    /// Whether the two reports agree on every compared dimension
    /// (cost deltas included).
    pub fn is_empty(&self) -> bool {
        self.question_changed.is_none()
            && self.answer_flip.is_none()
            && self.empty_answer_flip.is_none()
            && self.context_added.is_empty()
            && self.context_removed.is_empty()
            && self.citations_added.is_empty()
            && self.citations_removed.is_empty()
            && self.order_sensitivity_changed.is_none()
            && self.rules_added.is_empty()
            && self.rules_removed.is_empty()
            && self.completeness_changed.is_none()
            && self.evaluations_delta == 0
            && self.llm_calls_delta == 0
    }

    /// Render the diff as markdown (one `±`-style section per changed
    /// dimension; a single line when nothing changed).
    pub fn render_markdown(&self) -> String {
        let mut md = String::new();
        let _ = writeln!(md, "# Report diff\n");
        if self.is_empty() {
            let _ = writeln!(md, "No differences.");
            return md;
        }

        if let Some(flip) = &self.question_changed {
            let _ = writeln!(
                md,
                "**Question changed:** {} → {}\n",
                escape_cell(&flip.before),
                escape_cell(&flip.after)
            );
        }
        if let Some(flip) = &self.answer_flip {
            let _ = writeln!(
                md,
                "**Answer flip:** **{}** → **{}**\n",
                escape_cell(&flip.before),
                escape_cell(&flip.after)
            );
        }
        if let Some(flip) = &self.empty_answer_flip {
            let _ = writeln!(
                md,
                "**Answer without context flip:** {} → {}\n",
                escape_cell(&flip.before),
                escape_cell(&flip.after)
            );
        }
        if !self.context_added.is_empty() || !self.context_removed.is_empty() {
            let _ = writeln!(md, "## Retrieved context\n");
            for id in &self.context_added {
                let _ = writeln!(md, "- added `{}`", escape_cell(id));
            }
            for id in &self.context_removed {
                let _ = writeln!(md, "- removed `{}`", escape_cell(id));
            }
            md.push('\n');
        }
        if !self.citations_added.is_empty() || !self.citations_removed.is_empty() {
            let _ = writeln!(md, "## Counterfactual citations\n");
            for id in &self.citations_added {
                let _ = writeln!(md, "- now cites `{}`", escape_cell(id));
            }
            for id in &self.citations_removed {
                let _ = writeln!(md, "- no longer cites `{}`", escape_cell(id));
            }
            md.push('\n');
        }
        if let Some(flip) = &self.order_sensitivity_changed {
            let _ = writeln!(
                md,
                "**Order sensitivity:** {} → {}\n",
                flip.before, flip.after
            );
        }
        if !self.rules_added.is_empty() || !self.rules_removed.is_empty() {
            let _ = writeln!(md, "## Insight rules\n");
            for rule in &self.rules_added {
                let _ = writeln!(md, "- new rule: {}", escape_cell(rule));
            }
            for rule in &self.rules_removed {
                let _ = writeln!(md, "- dropped rule: {}", escape_cell(rule));
            }
            md.push('\n');
        }
        if let Some(flip) = &self.completeness_changed {
            let _ = writeln!(md, "**Completeness:** {} → {}\n", flip.before, flip.after);
        }
        if self.evaluations_delta != 0 || self.llm_calls_delta != 0 {
            let _ = writeln!(
                md,
                "## Evaluation cost\n\n\
                 | metric | delta |\n|--------|-------|\n\
                 | evaluations | {:+} |\n| LLM calls | {:+} |\n",
                self.evaluations_delta, self.llm_calls_delta
            );
        }
        md
    }

    /// Serialize the diff as JSON (schema-versioned like the report itself).
    pub fn to_json(&self) -> JsonValue {
        fn flip(value: &Option<Flip>) -> JsonValue {
            match value {
                Some(f) => JsonValue::Object(vec![
                    ("before".into(), JsonValue::String(f.before.clone())),
                    ("after".into(), JsonValue::String(f.after.clone())),
                ]),
                None => JsonValue::Null,
            }
        }
        fn strings(values: &[String]) -> JsonValue {
            JsonValue::Array(
                values
                    .iter()
                    .map(|v| JsonValue::String(v.clone()))
                    .collect(),
            )
        }
        JsonValue::Object(vec![
            ("schema_version".into(), JsonValue::Number(1.0)),
            (
                "kind".into(),
                JsonValue::String("rage-report-diff".to_string()),
            ),
            ("identical".into(), JsonValue::Bool(self.is_empty())),
            ("question_changed".into(), flip(&self.question_changed)),
            ("answer_flip".into(), flip(&self.answer_flip)),
            ("empty_answer_flip".into(), flip(&self.empty_answer_flip)),
            ("context_added".into(), strings(&self.context_added)),
            ("context_removed".into(), strings(&self.context_removed)),
            ("citations_added".into(), strings(&self.citations_added)),
            ("citations_removed".into(), strings(&self.citations_removed)),
            (
                "order_sensitivity_changed".into(),
                flip(&self.order_sensitivity_changed),
            ),
            ("rules_added".into(), strings(&self.rules_added)),
            ("rules_removed".into(), strings(&self.rules_removed)),
            (
                "completeness_changed".into(),
                flip(&self.completeness_changed),
            ),
            (
                "evaluations_delta".into(),
                JsonValue::Number(self.evaluations_delta as f64),
            ),
            (
                "llm_calls_delta".into(),
                JsonValue::Number(self.llm_calls_delta as f64),
            ),
        ])
    }
}

fn flip_of(before: &str, after: &str) -> Option<Flip> {
    (before != after).then(|| Flip {
        before: before.to_string(),
        after: after.to_string(),
    })
}

fn set_delta(a: &BTreeSet<String>, b: &BTreeSet<String>) -> (Vec<String>, Vec<String>) {
    let added = b.difference(a).cloned().collect();
    let removed = a.difference(b).cloned().collect();
    (added, removed)
}

fn rule_keys(report: &RageReport) -> BTreeSet<String> {
    report
        .insights
        .rules
        .iter()
        .map(|rule| {
            format!(
                "`{}` {} → {}",
                rule.doc_id,
                if rule.present { "present" } else { "absent" },
                rule.answer
            )
        })
        .collect()
}

/// Compare two reports (`a` = baseline, `b` = candidate).
pub fn diff(a: &RageReport, b: &RageReport) -> ReportDiff {
    let context_a: BTreeSet<String> = a.context.sources.iter().map(|s| s.doc_id.clone()).collect();
    let context_b: BTreeSet<String> = b.context.sources.iter().map(|s| s.doc_id.clone()).collect();
    let (context_added, context_removed) = set_delta(&context_a, &context_b);

    let citations_a: BTreeSet<String> = a.citations().iter().map(|s| s.to_string()).collect();
    let citations_b: BTreeSet<String> = b.citations().iter().map(|s| s.to_string()).collect();
    let (citations_added, citations_removed) = set_delta(&citations_a, &citations_b);

    let (rules_added, rules_removed) = set_delta(&rule_keys(a), &rule_keys(b));

    let sensitivity_label = |sensitive: bool| {
        if sensitive {
            "order-sensitive"
        } else {
            "order-stable"
        }
    };
    let completeness_label = |exact: bool| if exact { "exact" } else { "truncated" };

    ReportDiff {
        question_changed: flip_of(&a.question, &b.question),
        answer_flip: flip_of(&a.full_context_answer, &b.full_context_answer),
        empty_answer_flip: flip_of(&a.empty_context_answer, &b.empty_context_answer),
        context_added,
        context_removed,
        citations_added,
        citations_removed,
        order_sensitivity_changed: flip_of(
            sensitivity_label(a.order_sensitive()),
            sensitivity_label(b.order_sensitive()),
        ),
        rules_added,
        rules_removed,
        completeness_changed: flip_of(
            completeness_label(a.all_sections_exact()),
            completeness_label(b.all_sections_exact()),
        ),
        evaluations_delta: b.evaluations as i64 - a.evaluations as i64,
        llm_calls_delta: b.llm_calls as i64 - a.llm_calls as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use rage_core::explanation::ReportConfig;
    use rage_core::{Context, Evaluator, RageReport};
    use rage_llm::SourceText;
    use rage_llm::{Generation, LanguageModel, LlmInput};
    use rage_retrieval::Document;
    use std::sync::Arc;

    /// An LLM that parrots a forced answer unless the context is empty.
    struct ForcedAnswerLlm(String);

    impl LanguageModel for ForcedAnswerLlm {
        fn generate(&self, input: &LlmInput) -> Generation {
            let answer = if input.sources.is_empty() {
                "nothing".to_string()
            } else if input.sources.iter().any(|s: &SourceText| s.id == "decider") {
                self.0.clone()
            } else {
                "fallback".to_string()
            };
            Generation {
                answer: answer.clone(),
                text: answer,
                source_attention: vec![1.0; input.sources.len()],
                prompt_tokens: 1,
            }
        }
    }

    fn forced_report(answer: &str) -> RageReport {
        let documents = [
            Document::new("decider", "", "the deciding source"),
            Document::new("other", "", "an inert source"),
        ];
        let context = Context::from_documents("who?", &documents);
        let evaluator = Evaluator::new(Arc::new(ForcedAnswerLlm(answer.to_string())), context);
        RageReport::generate(&evaluator, &ReportConfig::default()).unwrap()
    }

    #[test]
    fn identical_reports_diff_empty() {
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        let report = scenarios::report_for(&scenario, &ReportConfig::default()).unwrap();
        let d = diff(&report, &report);
        assert!(d.is_empty());
        assert!(d.render_markdown().contains("No differences."));
        assert_eq!(d.to_json().get("identical"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn forced_answer_flip_is_reported_with_citation_delta() {
        let a = forced_report("Alice Archer");
        let b = forced_report("Boris Blake");
        let d = diff(&a, &b);
        assert_eq!(
            d.answer_flip,
            Some(Flip {
                before: "Alice Archer".into(),
                after: "Boris Blake".into()
            })
        );
        let md = d.render_markdown();
        assert!(md.contains("Answer flip"));
        assert!(md.contains("Alice Archer"));
        assert!(md.contains("Boris Blake"));
        // The rule churn follows the answers: each report's rules mention its
        // own forced answer only.
        assert!(d.rules_added.iter().all(|r| !r.contains("alice")));
    }

    #[test]
    fn citation_delta_tracks_the_deciding_source() {
        // Same forced answer, but different context membership → context and
        // citation sets differ.
        let a = forced_report("Alice Archer");
        let documents = [
            Document::new("decider", "", "the deciding source"),
            Document::new("replacement", "", "a different inert source"),
        ];
        let context = Context::from_documents("who?", &documents);
        let evaluator = Evaluator::new(
            Arc::new(ForcedAnswerLlm("Alice Archer".to_string())),
            context,
        );
        let b = RageReport::generate(&evaluator, &ReportConfig::default()).unwrap();
        let d = diff(&a, &b);
        assert_eq!(d.context_added, vec!["replacement".to_string()]);
        assert_eq!(d.context_removed, vec!["other".to_string()]);
        assert!(d.answer_flip.is_none());
    }

    #[test]
    fn diff_json_round_trips_through_the_renderer() {
        let a = forced_report("Alice Archer");
        let b = forced_report("Boris Blake");
        let value = diff(&a, &b).to_json();
        let reparsed = JsonValue::parse(&value.render()).unwrap();
        assert_eq!(reparsed, value);
        assert_eq!(
            reparsed.get("kind").and_then(JsonValue::as_str),
            Some("rage-report-diff")
        );
    }

    #[test]
    fn hostile_values_are_escaped_in_diff_markdown() {
        let mut d = diff(
            &forced_report("Alice Archer"),
            &forced_report("Alice Archer"),
        );
        d.answer_flip = Some(Flip {
            before: "evil|pipe".into(),
            after: "evil\nnewline".into(),
        });
        d.context_added = vec!["evil|doc".into()];
        let md = d.render_markdown();
        assert!(md.contains("evil\\|pipe"), "{md}");
        assert!(md.contains("evil<br>newline"), "{md}");
        assert!(md.contains("- added `evil\\|doc`"), "{md}");
    }

    #[test]
    fn cost_deltas_are_signed() {
        let mut a = forced_report("Alice Archer");
        let b = forced_report("Alice Archer");
        a.evaluations += 5;
        a.llm_calls += 2;
        let d = diff(&a, &b);
        assert_eq!(d.evaluations_delta, -5);
        assert_eq!(d.llm_calls_delta, -2);
        assert!(!d.is_empty());
        assert!(d.render_markdown().contains("| evaluations | -5 |"));
    }
}
