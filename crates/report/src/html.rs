//! A self-contained HTML rendering of a report, mirroring the paper's demo UI.
//!
//! The RAGE demonstration (§III) shows its explanations as side-by-side
//! panels. [`render_html`] reproduces that layout as a single static page:
//! six panels (answer provenance, counterfactual citations, order
//! sensitivity, optimal placements, perturbation insights, evaluation cost)
//! on a responsive grid, all CSS inline, no scripts and no external assets —
//! the page can be written next to a CI artifact and opened from disk.

use std::fmt::Write as _;

use rage_core::counterfactual::SearchDirection;
use rage_core::RageReport;

use crate::format_share;

/// Escape text for interpolation into HTML content or attribute values.
fn html_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

const STYLE: &str = "\
body{font-family:system-ui,-apple-system,'Segoe UI',sans-serif;margin:0;\
background:#f4f5f7;color:#1c1e21;}\
header{background:#1f3a5f;color:#fff;padding:1.2rem 2rem;}\
header h1{margin:0 0 .3rem;font-size:1.3rem;}\
header p{margin:.15rem 0;opacity:.9;}\
main{display:grid;grid-template-columns:repeat(auto-fit,minmax(22rem,1fr));\
gap:1rem;padding:1rem 2rem 2rem;}\
section{background:#fff;border:1px solid #d8dce2;border-radius:8px;\
padding:1rem 1.2rem;box-shadow:0 1px 2px rgba(0,0,0,.05);}\
section h2{margin:0 0 .6rem;font-size:1.02rem;color:#1f3a5f;\
border-bottom:2px solid #e8ebf0;padding-bottom:.4rem;}\
table{border-collapse:collapse;width:100%;font-size:.88rem;}\
th,td{border:1px solid #e2e5ea;padding:.3rem .5rem;text-align:left;}\
th{background:#f0f2f5;}\
.answer{font-weight:600;color:#0b6e4f;}\
.flip{font-weight:600;color:#a4452f;}\
.muted{color:#68707c;font-size:.85rem;}\
ul{margin:.4rem 0;padding-left:1.2rem;}\
code{background:#f0f2f5;border-radius:3px;padding:0 .25rem;}";

fn order_ids(report: &RageReport, order: &[usize]) -> String {
    report
        .context
        .doc_ids(order)
        .iter()
        .map(|id| html_escape(id))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Render the report as one self-contained HTML page (inline CSS, no external
/// assets) with the six demonstration panels.
pub fn render_html(report: &RageReport) -> String {
    let mut html = String::new();
    let _ = write!(
        html,
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>RAGE explanation — {}</title>\n<style>{STYLE}</style>\n</head>\n<body>\n",
        html_escape(&report.question)
    );
    let _ = write!(
        html,
        "<header>\n<h1>RAGE explanation</h1>\n\
         <p><strong>Question.</strong> {}</p>\n\
         <p><strong>Answer.</strong> <span class=\"answer\">{}</span>\
         &nbsp;&nbsp;<span class=\"muted\">without context: {}</span></p>\n</header>\n<main>\n",
        html_escape(&report.question),
        html_escape(&report.full_context_answer),
        html_escape(&report.empty_context_answer),
    );

    // Panel 1: answer provenance (the retrieved context).
    let _ = write!(
        html,
        "<section id=\"panel-provenance\">\n<h2>Retrieved context</h2>\n\
         <table>\n<tr><th>#</th><th>source</th><th>retrieval score</th>\
         <th>relevance</th></tr>\n"
    );
    for (i, source) in report.context.sources.iter().enumerate() {
        let relevance = match report.source_scores.get(i) {
            Some(score) => format!("{score:.3}"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td title=\"{}\">{}</td><td>{:.3}</td><td>{}</td></tr>",
            i + 1,
            html_escape(&source.title),
            html_escape(&source.doc_id),
            source.retrieval_score,
            relevance
        );
    }
    html.push_str("</table>\n</section>\n");

    // Panel 2: counterfactual citations.
    html.push_str("<section id=\"panel-citations\">\n<h2>Counterfactual citations</h2>\n");
    match &report.top_down.counterfactual {
        Some(cf) => {
            let _ = writeln!(
                html,
                "<p>Removing {{{}}} changes the answer to \
                 <span class=\"flip\">{}</span> <span class=\"muted\">({} evaluations)\
                 </span>.</p>",
                report
                    .citations()
                    .iter()
                    .map(|id| html_escape(id))
                    .collect::<Vec<_>>()
                    .join(", "),
                html_escape(&cf.answer),
                report.top_down.stats.candidates
            );
        }
        None => {
            let _ = writeln!(
                html,
                "<p>No removal within budget changes the answer \
                 <span class=\"muted\">({} evaluations)</span>.</p>",
                report.top_down.stats.candidates
            );
        }
    }
    match &report.bottom_up.counterfactual {
        Some(cf) => {
            let ids = report
                .context
                .doc_ids(cf.cited_positions(SearchDirection::BottomUp));
            let _ = writeln!(
                html,
                "<p>Retaining only {{{}}} already changes the no-context answer to \
                 <span class=\"flip\">{}</span>.</p>",
                ids.iter()
                    .map(|id| html_escape(id))
                    .collect::<Vec<_>>()
                    .join(", "),
                html_escape(&cf.answer)
            );
        }
        None => {
            html.push_str(
                "<p>No retained subset within budget changes the no-context answer.</p>\n",
            );
        }
    }
    html.push_str("</section>\n");

    // Panel 3: order sensitivity.
    html.push_str("<section id=\"panel-order\">\n<h2>Order sensitivity</h2>\n");
    match &report.permutation.counterfactual {
        Some(cf) => {
            let _ = writeln!(
                html,
                "<p>Re-ordering the context to {} <span class=\"muted\">(Kendall tau \
                 {:.2})</span> flips the answer to <span class=\"flip\">{}</span>.</p>",
                order_ids(report, &cf.order),
                cf.tau,
                html_escape(&cf.answer)
            );
        }
        None => {
            let _ = writeln!(
                html,
                "<p>The answer is stable under the {} most similar re-orderings \
                 tested.</p>",
                report.permutation.stats.candidates
            );
        }
    }
    html.push_str("</section>\n");

    // Panel 4: optimal placements.
    html.push_str("<section id=\"panel-placements\">\n<h2>Optimal placements</h2>\n");
    if report.best_orders.is_empty() {
        html.push_str("<p class=\"muted\">No placements ranked.</p>\n");
    } else {
        html.push_str(
            "<table>\n<tr><th>rank</th><th>order (doc ids)</th><th>objective</th>\
             <th>answer</th></tr>\n",
        );
        for (rank, op) in report.best_orders.iter().enumerate() {
            let _ = writeln!(
                html,
                "<tr><td>{}</td><td>{}</td><td>{:.3}</td><td>{}</td></tr>",
                rank + 1,
                order_ids(report, &op.order),
                op.objective,
                html_escape(&op.answer)
            );
        }
        html.push_str("</table>\n");
        if let Some(worst) = report.worst_orders.first() {
            let _ = writeln!(
                html,
                "<p class=\"muted\">Worst placement: {} (objective {:.3}) → {}.</p>",
                order_ids(report, &worst.order),
                worst.objective,
                html_escape(&worst.answer)
            );
        }
    }
    html.push_str("</section>\n");

    // Panel 5: perturbation insights.
    let _ = write!(
        html,
        "<section id=\"panel-insights\">\n<h2>Insights over {} sampled orders</h2>\n\
         <table>\n<tr><th>answer</th><th>share</th></tr>\n",
        report.insights.num_samples
    );
    for entry in &report.insights.distribution.entries {
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td>{}</td></tr>",
            html_escape(&entry.answer),
            format_share(entry.share)
        );
    }
    html.push_str("</table>\n");
    if !report.insights.rules.is_empty() {
        html.push_str("<ul>\n");
        for rule in &report.insights.rules {
            let _ = writeln!(
                html,
                "<li>when <code>{}</code> is {} the answer is <strong>{}</strong> \
                 <span class=\"muted\">(confidence {}, support {})</span></li>",
                html_escape(&rule.doc_id),
                if rule.present { "present" } else { "absent" },
                html_escape(&rule.answer),
                format_share(rule.confidence),
                format_share(rule.support)
            );
        }
        html.push_str("</ul>\n");
    }
    html.push_str("</section>\n");

    // Panel 6: evaluation cost.
    let _ = write!(
        html,
        "<section id=\"panel-cost\">\n<h2>Evaluation cost</h2>\n\
         <p><strong>{}</strong> distinct perturbations evaluated, \
         <strong>{}</strong> LLM inferences paid for, permutation budget \
         <strong>{}</strong>.</p>\n\
         <p class=\"muted\">Cache hits across the report's searches are free; \
         the gap between the two numbers is sharing.</p>\n",
        report.evaluations, report.llm_calls, report.permutation_budget
    );
    if !report.all_sections_exact() {
        html.push_str("<ul>\n");
        for (name, marker) in [
            ("top-down", &report.top_down.completeness),
            ("bottom-up", &report.bottom_up.completeness),
            ("permutation", &report.permutation.completeness),
            ("placements", &report.placements_completeness),
            ("insights", &report.insights.completeness),
        ] {
            if !marker.is_exact() {
                let _ = writeln!(
                    html,
                    "<li class=\"muted\">{}: {}</li>",
                    name,
                    html_escape(&marker.describe())
                );
            }
        }
        html.push_str("</ul>\n");
    }
    html.push_str("</section>\n");

    html.push_str("</main>\n</body>\n</html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use rage_core::explanation::ReportConfig;

    #[test]
    fn page_is_self_contained_with_six_panels() {
        let scenario = scenarios::scenario_by_name("us_open").unwrap();
        let report = scenarios::report_for(&scenario, &ReportConfig::default()).unwrap();
        let html = render_html(&report);
        for panel in [
            "panel-provenance",
            "panel-citations",
            "panel-order",
            "panel-placements",
            "panel-insights",
            "panel-cost",
        ] {
            assert!(html.contains(panel), "missing {panel}");
        }
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<style>"));
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "<script", "<link", "src="] {
            assert!(!html.contains(needle), "page not self-contained: {needle}");
        }
        assert!(html.contains(&html_escape(&report.full_context_answer)));
    }

    #[test]
    fn interpolated_text_is_escaped() {
        assert_eq!(
            html_escape("<img src=x> & \"quotes\""),
            "&lt;img src=x&gt; &amp; &quot;quotes&quot;"
        );
    }
}
