//! No-op stand-ins for the serde derive macros.
//!
//! The workspace annotates many types with `#[derive(Serialize, Deserialize)]`
//! and `#[serde(...)]` attributes. Nothing in the workspace serialises through
//! serde's data model (JSONL persistence is hand-rolled in
//! `rage_retrieval::json`), so these derives expand to nothing; registering
//! `serde` as a helper attribute keeps the field annotations compiling.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
