//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros and declares empty marker traits so that
//! `use serde::{Deserialize, Serialize}` resolves in both the type and macro
//! namespaces, exactly like the real crate. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never used as a bound here).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never used as a bound here).
pub trait Deserialize<'de> {}
