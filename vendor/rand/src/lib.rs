//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset this workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `SeedableRng::seed_from_u64`, [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`] — backed by the
//! SplitMix64 generator. Deterministic for a fixed seed; the streams differ
//! from upstream `rand`, which only matters to tests that hard-code expected
//! sequences (none here do). See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value range (a stand-in for
/// `Distribution<T> for Standard`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`] (a stand-in for `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform index in `0..n` via the widening-multiply method (`n > 0`).
pub(crate) fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0, "empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as usize
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing sampling interface, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i: usize = rng.gen_range(0..5);
            seen[i] = true;
            let j: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&j));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.gen_range(0..=1u32) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }
}
