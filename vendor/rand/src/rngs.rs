//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (SplitMix64).
///
/// SplitMix64 passes the statistical tests that matter at this workspace's
/// scale (uniformity of small-range draws, shuffle balance) and is trivially
/// seedable from a single `u64`, matching how every call site constructs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden-value pin of the raw SplitMix64 stream. Everything downstream —
    /// permutation sampling, synthetic corpora, report insight samples — is
    /// deterministic *because* this stream is; if a refactor changes these
    /// constants, every seeded artefact in the workspace silently changes too.
    /// The seed-0 values are the published SplitMix64 reference vector.
    #[test]
    fn splitmix64_stream_matches_golden_values() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(rng.next_u64(), 0xf88b_b8a8_724c_81ec);

        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 0xbdd7_3226_2feb_6e95);
        assert_eq!(rng.next_u64(), 0x28ef_e333_b266_f103);
        assert_eq!(rng.next_u64(), 0x4752_6757_130f_9f52);
        assert_eq!(rng.next_u64(), 0x581c_e1ff_0e4a_e394);
    }

    /// `next_u32` is pinned as the upper half of `next_u64`.
    #[test]
    fn next_u32_is_the_upper_half() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let hi = (a.next_u64() >> 32) as u32;
            assert_eq!(b.next_u32(), hi);
        }
    }

    /// Identical seeds give identical streams; different seeds diverge.
    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let mut c = StdRng::seed_from_u64(124);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
