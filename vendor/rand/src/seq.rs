//! Sequence helpers (`SliceRandom`).

use crate::{uniform_index, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Unbiased in-place Fisher–Yates (Durstenfeld) shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut items: Vec<usize> = (0..20).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
    }
}
