//! The README quick start: corpus → Searcher → SimLlm → RagPipeline →
//! counterfactual explanation. Mirrors the doc example in `rage_core`.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use rage::prelude::*;

fn main() -> Result<(), RageError> {
    // 1. A tiny knowledge corpus, indexed for BM25 retrieval.
    let mut corpus = Corpus::new();
    corpus.push(Document::new(
        "slams",
        "Grand slams",
        "Novak Djokovic holds the most grand slam titles.",
    ));
    corpus.push(Document::new(
        "wins",
        "Match wins",
        "Roger Federer leads total match wins.",
    ));
    let searcher = Searcher::new(IndexBuilder::default().build(&corpus));

    // 2. The (simulated) LLM and the RAG pipeline.
    let llm = Arc::new(SimLlm::new(SimLlmConfig::default()));
    let pipeline = RagPipeline::new(searcher, llm);

    // 3. One retrieval-augmented round trip.
    let question = "Who holds the most grand slam titles?";
    let (response, evaluator) = pipeline.ask_and_explain(question, 2)?;
    println!("Q: {question}");
    println!("A: {}", response.answer());
    println!(
        "context: {:?}",
        response
            .context
            .sources
            .iter()
            .map(|s| s.doc_id.as_str())
            .collect::<Vec<_>>()
    );

    // 4. Explain the answer: the smallest source removal that changes it.
    let outcome = find_combination_counterfactual(&evaluator, &CounterfactualConfig::top_down())?;
    match outcome.counterfactual {
        Some(cf) => println!(
            "counterfactual: removing {:?} changes the answer to {:?} \
             ({} evaluations)",
            cf.removed, cf.answer, outcome.stats.candidates
        ),
        None => println!("no counterfactual found"),
    }

    // 5. Or generate the full report in one call.
    let report = RageReport::generate(&evaluator, &ReportConfig::default())?;
    print!("\n{}", report.summary());
    Ok(())
}
