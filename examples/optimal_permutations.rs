//! Optimal permutations: place the most relevant sources where the model
//! actually looks, via k-best assignment — and cross-check against the naive
//! `O(k!)` baseline.
//!
//! Run with `cargo run --example optimal_permutations`.

use std::sync::Arc;

use rage::explain::optimal::OrderObjective;
use rage::prelude::*;

fn main() -> Result<(), RageError> {
    let scenario = rage::datasets::us_open::scenario();
    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(searcher, Arc::new(llm));

    let (response, evaluator) =
        pipeline.ask_and_explain(&scenario.question, scenario.retrieval_k)?;
    println!("Q: {}", scenario.question);
    println!("A (retrieved order): {}\n", response.answer());

    let config = OptimalConfig::default().with_num_orders(3);
    let best = best_orders(&evaluator, &config)?;
    let worst = worst_orders(&evaluator, &config)?;

    println!("top placements (relevance x position-attention):");
    for (rank, op) in best.iter().enumerate() {
        let ids = response.context.doc_ids(&op.order);
        println!(
            "  {}. objective {:.3}  tau {:+.2}  answer {:<14} {:?}",
            rank + 1,
            op.objective,
            op.tau,
            op.answer,
            ids
        );
    }
    if let Some(w) = worst.first() {
        println!(
            "\nworst placement: objective {:.3} -> answer {}",
            w.objective, w.answer
        );
    }

    // Cross-check the ranked enumeration against brute force.
    let naive = naive_orders(&evaluator, &config, OrderObjective::Best)?;
    for (r, n) in best.iter().zip(naive.iter()) {
        assert!((r.objective - n.objective).abs() < 1e-9);
    }
    println!("\nk-best placement agrees with the O(k!) baseline");
    Ok(())
}
