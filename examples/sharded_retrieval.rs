//! Sharded retrieval over the large-corpus scenario: partition a 2k+ document corpus,
//! query it through the `Retriever`-generic pipeline, and verify the sharded answer —
//! and the whole ranked context — is identical to the single-index one.
//!
//! Run with `cargo run --release --example sharded_retrieval`.

use std::sync::Arc;
use std::time::Instant;

use rage::prelude::*;
use rage_datasets::large_corpus::{self, LargeCorpusConfig};

fn main() -> Result<(), RageError> {
    // 1. A corpus big enough for sharding to mean something: 6 signal documents
    //    spread through ~2k seeded filler documents.
    let scenario = large_corpus::scenario(LargeCorpusConfig::default());
    println!(
        "scenario {:?}: {} documents, retrieval depth {}",
        scenario.name,
        scenario.corpus_size(),
        scenario.retrieval_k
    );

    // 2. Build both backends. The sharded build indexes each partition on its own
    //    worker thread (one per shard).
    let started = Instant::now();
    let single = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let single_build = started.elapsed();
    let started = Instant::now();
    let sharded = ShardedSearcher::new(ShardedIndexBuilder::new(8).build(&scenario.corpus));
    let sharded_build = started.elapsed();
    println!(
        "index build: single {single_build:?}, 8 shards {sharded_build:?} (sizes {:?})",
        sharded.index().shard_sizes()
    );

    // 3. The pipeline is generic over `Retriever`, so both backends wire in the same
    //    way — and, because sharded rankings are identical by construction, both
    //    pipelines retrieve the same context and answer identically.
    let llm = Arc::new(SimLlm::new(
        SimLlmConfig::default().with_prior(scenario.prior.clone()),
    ));
    let single_pipeline = RagPipeline::new(single, llm.clone());
    let sharded_pipeline = RagPipeline::new(sharded, llm);

    let a = single_pipeline.ask(&scenario.question, scenario.retrieval_k)?;
    let b = sharded_pipeline.ask(&scenario.question, scenario.retrieval_k)?;
    assert_eq!(a, b, "sharded retrieval must be indistinguishable");

    println!("Q: {}", scenario.question);
    println!("A: {} (identical through both backends)", a.answer());
    println!(
        "context: {:?}",
        a.context
            .sources
            .iter()
            .map(|s| s.doc_id.as_str())
            .collect::<Vec<_>>()
    );

    // 4. Even the per-document scores agree bit-for-bit: shards are scored with the
    //    *global* BM25 statistics, so partitioning never changes a single bit.
    for source in &a.context.sources {
        let x = single_pipeline
            .retriever()
            .score_document(&scenario.question, &source.doc_id)
            .expect("retrieved document scores");
        let y = sharded_pipeline
            .retriever()
            .score_document(&scenario.question, &source.doc_id)
            .expect("retrieved document scores");
        assert_eq!(x.to_bits(), y.to_bits());
    }
    println!("per-document scores match bit-for-bit across 8 shards");
    Ok(())
}
