//! Use case #1 — "Ambiguous Answers": who is the best of The Big Three?
//!
//! Run with `cargo run --example big_three`.

use std::sync::Arc;

use rage::prelude::*;

fn main() -> Result<(), RageError> {
    let scenario = rage::datasets::big_three::scenario();
    println!("{}\n", scenario.description);

    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(searcher, Arc::new(llm));

    let (response, evaluator) =
        pipeline.ask_and_explain(&scenario.question, scenario.retrieval_k)?;
    println!("Q: {}", scenario.question);
    println!(
        "A: {}  (expected: {})",
        response.answer(),
        scenario.expected_full_context_answer
    );

    let report = RageReport::generate(&evaluator, &ReportConfig::default())?;
    println!("\n{}", render_markdown(&report));
    Ok(())
}
