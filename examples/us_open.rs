//! Use case #2 — "Inconsistent Sources": the most recent US Open champion.
//!
//! Demonstrates the permutation counterfactual: burying the up-to-date source
//! in the middle of the context makes the model answer with a stale champion.
//!
//! Run with `cargo run --example us_open`.

use std::sync::Arc;

use rage::prelude::*;

fn main() -> Result<(), RageError> {
    let scenario = rage::datasets::us_open::scenario();
    println!("{}\n", scenario.description);

    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(searcher, Arc::new(llm));

    let (response, evaluator) =
        pipeline.ask_and_explain(&scenario.question, scenario.retrieval_k)?;
    println!("Q: {}", scenario.question);
    println!("A: {}", response.answer());

    let outcome = find_permutation_counterfactual(&evaluator, &SearchBudget::max_evaluations(200))?;
    match &outcome.counterfactual {
        Some(cf) => {
            let order = response.context.doc_ids(&cf.order);
            println!(
                "\nre-ordering the sources as {order:?} (tau {:.2}) flips the answer to {:?}",
                cf.tau, cf.answer
            );
        }
        None => println!("\nthe answer is stable under re-ordering"),
    }

    let insights = Insights::from_perturbations(
        &evaluator,
        &rage::explain::insights::random_permutations(evaluator.k(), 40, 3),
    )?;
    println!("\nanswer distribution over 40 random orders:");
    for entry in &insights.distribution.entries {
        println!("  {:<16} {:>5.1}%", entry.answer, entry.share * 100.0);
    }
    Ok(())
}
