//! Bring your own corpus: JSONL round trip plus an explanation over it.
//!
//! Run with `cargo run --example custom_corpus`.

use std::sync::Arc;

use rage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A corpus in the Pyserini-style JSONL interchange format.
    let jsonl = r#"
{"id": "volcanoes", "title": "European volcanoes", "text": "Mount Etna is the most active volcano in Europe."}
{"id": "rivers", "title": "European rivers", "contents": "The Volga is the longest river in Europe."}
{"id": "peaks", "title": "Mountain peaks", "text": "Mont Blanc is the highest peak in the Alps.", "fields": {"region": "alps"}}
"#;
    let corpus = Corpus::read_jsonl(jsonl.trim().as_bytes())?;
    println!("loaded {} documents from JSONL", corpus.len());

    let searcher = Searcher::new(IndexBuilder::default().build(&corpus));
    let pipeline = RagPipeline::new(searcher, Arc::new(SimLlm::new(SimLlmConfig::default())));

    let question = "What is the most active volcano in Europe?";
    let (response, evaluator) = pipeline.ask_and_explain(question, 2)?;
    println!("Q: {question}");
    println!("A: {}", response.answer());

    let report = RageReport::generate(&evaluator, &ReportConfig::default())?;
    print!("\n{}", report.summary());

    // Round-trip the corpus back out.
    let mut buffer = Vec::new();
    corpus.write_jsonl(&mut buffer)?;
    assert_eq!(Corpus::read_jsonl(buffer.as_slice())?, corpus);
    println!("JSONL round trip ok ({} bytes)", buffer.len());
    Ok(())
}
