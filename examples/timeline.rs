//! Use case #3 — "Timelines": counting Player-of-the-Year awards.
//!
//! The bottom-up counterfactual cites the documents that actually support the
//! count; removing one supporting year lowers the answer.
//!
//! Run with `cargo run --example timeline`.

use std::sync::Arc;

use rage::prelude::*;

fn main() -> Result<(), RageError> {
    let scenario = rage::datasets::timeline::scenario();
    println!("{}\n", scenario.description);

    let searcher = Searcher::new(IndexBuilder::default().build(&scenario.corpus));
    let llm = SimLlm::new(SimLlmConfig::default().with_prior(scenario.prior.clone()));
    let pipeline = RagPipeline::new(searcher, Arc::new(llm));

    let (response, evaluator) =
        pipeline.ask_and_explain(&scenario.question, scenario.retrieval_k)?;
    println!("Q: {}", scenario.question);
    println!("A: {}", response.answer());

    let outcome = find_combination_counterfactual(
        &evaluator,
        &CounterfactualConfig::top_down().with_scoring(ScoringMethod::RetrievalScore),
    )?;
    match &outcome.counterfactual {
        Some(cf) => {
            let removed = response.context.doc_ids(&cf.removed);
            println!(
                "\nremoving {removed:?} changes the count from {:?} to {:?}",
                cf.baseline_answer, cf.answer
            );
        }
        None => println!("\nno single removal changes the count"),
    }
    Ok(())
}
